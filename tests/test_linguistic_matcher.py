"""Tests for categorization and the linguistic matcher (lsim)."""

import pytest

from repro.config import CupidConfig
from repro.linguistic.categorization import Categorizer
from repro.linguistic.matcher import LinguisticMatcher, LsimTable
from repro.linguistic.normalizer import Normalizer
from repro.model.builder import schema_from_tree
from repro.model.element import SchemaElement


@pytest.fixture
def categorizer(thesaurus, normalizer, config):
    return Categorizer(thesaurus, normalizer, config)


@pytest.fixture
def address_schema():
    return schema_from_tree(
        "S1",
        {
            "Address": {"Street": "string", "City": "string"},
            "Item": {"Price": "money", "Qty": "integer"},
        },
    )


class TestCategorization:
    def test_container_category(self, categorizer, address_schema):
        """Street and City grouped into a category keyed by Address."""
        categories = categorizer.categorize(address_schema)
        container_cats = [
            c for c in categories.values()
            if c.source == "container"
            and any(t.text == "address" for t in c.keywords)
        ]
        assert container_cats
        names = {m.name for m in container_cats[0].members}
        assert {"Street", "City"} <= names

    def test_dtype_category(self, categorizer, address_schema):
        categories = categorizer.categorize(address_schema)
        number_cat = categories.get("dtype:Number")
        assert number_cat is not None
        assert any(m.name == "Qty" for m in number_cat.members)

    def test_concept_category(self, categorizer, address_schema):
        categories = categorizer.categorize(address_schema)
        money_cat = categories.get("concept:money")
        assert money_cat is not None
        assert any(m.name == "Price" for m in money_cat.members)

    def test_name_token_categories(self, categorizer, address_schema):
        categories = categorizer.categorize(address_schema)
        assert "name:street" in categories

    def test_root_category_always_present(self, categorizer, address_schema):
        categories = categorizer.categorize(address_schema)
        assert "root" in categories
        assert address_schema.root in categories["root"].members

    def test_elements_can_join_multiple_categories(
        self, categorizer, address_schema
    ):
        categories = categorizer.categorize(address_schema)
        price_cats = [
            key for key, c in categories.items()
            if any(m.name == "Price" for m in c.members)
        ]
        assert len(price_cats) >= 3  # concept, dtype, container, name

    def test_not_instantiated_elements_skipped(self, categorizer):
        schema = schema_from_tree("S", {"A": {"x": "int"}})
        hidden = SchemaElement(name="Hidden", not_instantiated=True)
        schema.add_element(hidden)
        schema.add_containment(schema.root, hidden)
        categories = categorizer.categorize(schema)
        for category in categories.values():
            assert hidden not in category.members

    def test_dtype_categories_only_pair_with_dtype(self, categorizer):
        """Data types 'are used primarily to prune the matching'."""
        schema = schema_from_tree("S", {"Number": {"x": "int"}})
        categories = categorizer.categorize(schema)
        dtype = categories["dtype:Number"]
        name_cat = categories["name:number"]
        assert not categorizer.compatible(dtype, name_cat)

    def test_compatibility_uses_thns(self, categorizer, address_schema):
        categories = categorizer.categorize(address_schema)
        cat = categories["name:street"]
        assert categorizer.compatible(cat, cat)


class TestLsimTable:
    def test_default_zero(self):
        table = LsimTable()
        a = SchemaElement(name="A")
        b = SchemaElement(name="B")
        assert table.get(a, b) == 0.0

    def test_set_get(self):
        table = LsimTable()
        a = SchemaElement(name="A")
        b = SchemaElement(name="B")
        table.set(a, b, 0.7)
        assert table.get(a, b) == 0.7
        assert table.get_by_id(a.element_id, b.element_id) == 0.7

    def test_out_of_range_rejected(self):
        table = LsimTable()
        a = SchemaElement(name="A")
        b = SchemaElement(name="B")
        with pytest.raises(ValueError):
            table.set(a, b, 1.2)


class TestFactoredLsimTable:
    """Distinct-name kernel output: factored form vs dict form."""

    @pytest.fixture
    def kernel_matcher(self, thesaurus):
        return LinguisticMatcher(thesaurus, CupidConfig(engine="dense"))

    def test_kernel_produces_factored_table(
        self, kernel_matcher, tiny_pair
    ):
        from repro.linguistic.kernel import FactoredLsimTable

        table = kernel_matcher.compute(*tiny_pair)
        assert isinstance(table, FactoredLsimTable)
        assert table.factored_live

    def test_factored_matches_reference_path(self, thesaurus, tiny_pair):
        kernel = LinguisticMatcher(
            thesaurus, CupidConfig(engine="dense")
        ).compute(*tiny_pair)
        plain = LinguisticMatcher(
            thesaurus, CupidConfig(engine="dense", linguistic_kernel=False)
        ).compute(*tiny_pair)
        assert sorted(kernel.items()) == sorted(plain.items())
        assert len(kernel) == len(plain)

    def test_factored_reads_without_materializing(
        self, kernel_matcher, tiny_pair
    ):
        source, target = tiny_pair
        table = kernel_matcher.compute(source, target)
        qty = source.element_named("Qty")
        quantity = target.element_named("Quantity")
        assert table.get(qty, quantity) == pytest.approx(1.0)
        assert table._materialized is False

    def test_set_materializes_and_detaches(
        self, kernel_matcher, tiny_pair
    ):
        source, target = tiny_pair
        original = kernel_matcher.compute(source, target)
        duplicate = original.copy()
        assert duplicate.factored_live
        qty = source.element_named("Qty")
        cost = target.element_named("Cost")
        duplicate.set(qty, cost, 0.9)
        assert not duplicate.factored_live
        assert duplicate.get(qty, cost) == 0.9
        # The session-cached original is untouched (copy-on-write).
        assert original.factored_live
        assert original.get(qty, cost) != 0.9

    def test_vocabulary_cached_on_preparation(
        self, kernel_matcher, tiny_pair
    ):
        source, target = tiny_pair
        prep = kernel_matcher.prepare(source)
        assert prep.vocabulary is None
        vocab = kernel_matcher.vocabulary(prep)
        assert prep.vocabulary is vocab
        assert kernel_matcher.vocabulary(prep) is vocab
        assert vocab.n_names > 0
        assert vocab.n_profiles >= vocab.n_names > 0

    def test_kernel_disabled_for_reference_engine(
        self, thesaurus, tiny_pair
    ):
        from repro.linguistic.kernel import FactoredLsimTable

        table = LinguisticMatcher(
            thesaurus, CupidConfig(engine="reference")
        ).compute(*tiny_pair)
        assert not isinstance(table, FactoredLsimTable)

    def test_kernel_disabled_with_descriptions(self, thesaurus, tiny_pair):
        from repro.linguistic.kernel import FactoredLsimTable

        table = LinguisticMatcher(
            thesaurus, CupidConfig(engine="dense", use_descriptions=True)
        ).compute(*tiny_pair)
        assert not isinstance(table, FactoredLsimTable)

    def test_kernel_stats_present(self, kernel_matcher, tiny_pair):
        table = kernel_matcher.compute(*tiny_pair)
        stats = table.kernel_stats
        assert stats["vocab_source_names"] > 0
        assert stats["kernel_distinct_name_pairs"] <= (
            stats["kernel_element_pairs"]
        )
        assert 0.0 <= stats["kernel_hit_rate"] <= 1.0


class TestBatchedNs:
    """The memo's batched ns entry point vs the scalar path.

    The kernel resolves its distinct-name cross product through
    ``NameSimilarityMemo.element_name_similarity_batch``; every value
    must be bit-identical to per-pair ``element_name_similarity``
    calls on both the vectorized and the flat-array resolution paths.
    """

    @pytest.fixture
    def wide_pair(self):
        from repro.datasets.generator import (
            PerturbationConfig,
            SchemaGenerator,
        )

        generator = SchemaGenerator(seed=77)
        schema = generator.generate(
            n_leaves=60, max_depth=3, name_repetition=0.4
        )
        other, _ = generator.perturb(
            schema, PerturbationConfig(abbreviate=0.3, synonym=0.2)
        )
        return schema, other

    def _table(self, thesaurus, wide_pair, **overrides):
        config = CupidConfig(engine="dense", **overrides)
        return LinguisticMatcher(thesaurus, config).compute(*wide_pair)

    def test_batched_matches_scalar(self, thesaurus, wide_pair):
        batched = self._table(thesaurus, wide_pair)
        scalar = self._table(
            thesaurus, wide_pair, linguistic_batch_ns=False
        )
        assert sorted(batched.items()) == sorted(scalar.items())
        assert batched.kernel_stats["kernel_ns_batched_pairs"] > 0
        assert scalar.kernel_stats["kernel_ns_batched_pairs"] == 0

    def test_batched_matches_scalar_stdlib(self, thesaurus, wide_pair):
        batched = self._table(
            thesaurus, wide_pair, dense_backend="stdlib"
        )
        scalar = self._table(
            thesaurus,
            wide_pair,
            dense_backend="stdlib",
            linguistic_batch_ns=False,
        )
        assert sorted(batched.items()) == sorted(scalar.items())
        assert batched.kernel_stats["kernel_ns_batched_pairs"] > 0

    def test_backends_agree_batched(self, thesaurus, wide_pair):
        vectorized = self._table(thesaurus, wide_pair)
        flat = self._table(thesaurus, wide_pair, dense_backend="stdlib")
        assert sorted(vectorized.items()) == sorted(flat.items())

    def test_small_batch_routes_scalar(
        self, thesaurus, normalizer, config
    ):
        """Below the batch floor the entry point defers to the scalar
        method — same results, no batch setup."""
        from repro.linguistic.name_similarity import NameSimilarityMemo

        names = [
            normalizer.normalize(text)
            for text in ("CustomerName", "ClientName", "OrderDate")
        ]
        memo = NameSimilarityMemo(thesaurus, config)
        pairs = [(names[0], names[1]), (names[0], names[2])]
        batched = memo.element_name_similarity_batch(pairs)
        fresh = NameSimilarityMemo(thesaurus, config)
        scalar = [
            fresh.element_name_similarity(n1, n2) for n1, n2 in pairs
        ]
        assert batched == scalar


class TestLinguisticMatcher:
    def test_identical_leaf_names_get_full_lsim(self, thesaurus, tiny_pair):
        source, target = tiny_pair
        table = LinguisticMatcher(thesaurus).compute(source, target)
        qty = source.element_named("Qty")
        quantity = target.element_named("Quantity")
        assert table.get(qty, quantity) == pytest.approx(1.0)

    def test_synonym_pair_scores(self, thesaurus, tiny_pair):
        source, target = tiny_pair
        table = LinguisticMatcher(thesaurus).compute(source, target)
        price = source.element_named("Price")
        cost = target.element_named("Cost")
        assert table.get(price, cost) > 0.6

    def test_incomparable_pairs_absent(self, thesaurus):
        source = schema_from_tree("S1", {"A": {"Street": "string"}})
        target = schema_from_tree("S2", {"B": {"Quantity": "integer"}})
        table = LinguisticMatcher(thesaurus).compute(source, target)
        street = source.element_named("Street")
        quantity = target.element_named("Quantity")
        # Different broad types, no shared tokens, dissimilar containers.
        assert table.get(street, quantity) == 0.0

    def test_roots_are_comparable(self, thesaurus):
        source = schema_from_tree("PO", {"A": {"x": "int"}})
        target = schema_from_tree("PurchaseOrder", {"A": {"x": "int"}})
        table = LinguisticMatcher(thesaurus).compute(source, target)
        assert table.get(source.root, target.root) == pytest.approx(1.0)

    def test_all_values_in_unit_interval(self, thesaurus, po_schema,
                                          purchase_order_schema):
        table = LinguisticMatcher(thesaurus).compute(
            po_schema, purchase_order_schema
        )
        for _, value in table.items():
            assert 0.0 <= value <= 1.0

    def test_figure2_acronyms(self, thesaurus, po_schema,
                              purchase_order_schema):
        """UoM↔UnitOfMeasure and Qty↔Quantity from Section 4."""
        table = LinguisticMatcher(thesaurus).compute(
            po_schema, purchase_order_schema
        )
        uom = po_schema.element_named("UoM")
        unit_of_measure = purchase_order_schema.element_named("UnitOfMeasure")
        assert table.get(uom, unit_of_measure) == pytest.approx(1.0)
