"""Tests for repro.model.element, builder, and validation."""

import pytest

from repro.exceptions import SchemaError
from repro.model.builder import SchemaBuilder, schema_from_tree
from repro.model.datatypes import DataType
from repro.model.element import ElementKind, SchemaElement
from repro.model.validation import validate_schema


class TestSchemaElement:
    def test_identity_is_id_based(self):
        a = SchemaElement(name="X")
        b = SchemaElement(name="X")
        assert a != b
        assert a == a
        assert hash(a) != hash(b)

    def test_clone_gets_fresh_id(self):
        original = SchemaElement(name="X", data_type=DataType.INTEGER)
        copy = original.clone()
        assert copy.name == original.name
        assert copy.data_type is original.data_type
        assert copy.element_id != original.element_id

    def test_is_atomic(self):
        assert SchemaElement(name="X", data_type=DataType.INTEGER).is_atomic
        assert not SchemaElement(name="X").is_atomic

    def test_empty_name_rejected_unless_not_instantiated(self):
        with pytest.raises(ValueError):
            SchemaElement(name="")
        SchemaElement(name="", not_instantiated=True)  # allowed

    def test_key_tuple(self):
        element = SchemaElement(name="X")
        assert element.key() == (element.element_id, "X")

    def test_repr_mentions_name_and_type(self):
        element = SchemaElement(name="Qty", data_type=DataType.INTEGER)
        assert "Qty" in repr(element)
        assert "integer" in repr(element)


class TestSchemaBuilder:
    def test_add_child_and_leaf(self):
        builder = SchemaBuilder("S")
        table = builder.add_child(builder.root, "Orders")
        leaf = builder.add_leaf(table, "Qty", "integer")
        assert builder.schema.container_of(leaf) is table
        assert leaf.data_type is DataType.INTEGER

    def test_leaf_type_defaults_to_any(self):
        builder = SchemaBuilder("S")
        leaf = builder.add_leaf(builder.root, "X")
        assert leaf.data_type is DataType.ANY

    def test_shared_type_is_not_instantiated(self):
        builder = SchemaBuilder("S")
        shared = builder.add_shared_type("Address")
        assert shared.not_instantiated
        assert builder.schema.container_of(shared) is builder.root

    def test_derive_from(self):
        builder = SchemaBuilder("S")
        shared = builder.add_shared_type("Address")
        user = builder.add_child(builder.root, "ShipTo")
        builder.derive_from(user, shared)
        assert builder.schema.derived_bases(user) == [shared]

    def test_add_tree_nested_spec(self):
        builder = SchemaBuilder("S")
        builder.add_tree(
            builder.root,
            {"A": {"B": {"C": "integer"}, "D": DataType.STRING}},
        )
        c = builder.find("A", "B", "C")
        assert c.data_type is DataType.INTEGER
        d = builder.find("A", "D")
        assert d.data_type is DataType.STRING

    def test_find_missing_step_raises(self):
        builder = SchemaBuilder("S")
        builder.add_tree(builder.root, {"A": {"B": "int"}})
        with pytest.raises(SchemaError):
            builder.find("A", "Nope")

    def test_find_ambiguous_step_raises(self):
        builder = SchemaBuilder("S")
        builder.add_child(builder.root, "A")
        builder.add_child(builder.root, "A")
        with pytest.raises(SchemaError):
            builder.find("A")

    def test_schema_from_tree_one_shot(self):
        schema = schema_from_tree("S", {"T": {"c1": "int", "c2": "varchar"}})
        assert len(schema.elements_named("c1")) == 1
        assert validate_schema(schema) == []


class TestValidation:
    def test_clean_schema_has_no_warnings(self):
        schema = schema_from_tree("S", {"A": {"x": "int"}})
        assert validate_schema(schema) == []

    def test_unreachable_element_warns(self):
        schema = schema_from_tree("S", {"A": {"x": "int"}})
        schema.add_element(SchemaElement(name="Orphan"))
        warnings = validate_schema(schema)
        assert any("Orphan" in w for w in warnings)

    def test_unreachable_ok_when_not_required(self):
        schema = schema_from_tree("S", {"A": {"x": "int"}})
        schema.add_element(SchemaElement(name="Orphan"))
        assert validate_schema(schema, require_connected=False) == []

    def test_refint_without_sources_warns(self):
        schema = schema_from_tree("S", {"A": {"x": "int"}})
        refint = schema.add_element(
            SchemaElement(
                name="fk", kind=ElementKind.REFINT, not_instantiated=True
            )
        )
        schema.add_containment(schema.element_named("A"), refint)
        warnings = validate_schema(schema)
        assert any("aggregates no source" in w for w in warnings)
        assert any("references 0 targets" in w for w in warnings)

    def test_atomic_element_with_children_warns(self):
        schema = schema_from_tree("S", {"A": {"x": "int"}})
        x = schema.element_named("x")
        child = schema.add_element(SchemaElement(name="odd"))
        schema.add_containment(x, child)
        warnings = validate_schema(schema)
        assert any("atomic element" in w for w in warnings)
