"""Tests for repro.config — the Table 1 parameters."""

import os

import pytest

from repro.config import DEFAULT_CONFIG, CupidConfig
from repro.exceptions import ConfigError
from repro.linguistic.tokens import TokenType


class TestDefaults:
    def test_default_config_is_valid(self):
        DEFAULT_CONFIG.validate()

    def test_table1_typical_values(self):
        """The defaults are the paper's Table 1 typical values."""
        config = CupidConfig()
        assert config.thns == 0.5
        assert config.thhigh == 0.6
        assert config.thlow == 0.35
        assert config.cinc == 1.2
        assert config.cdec == 0.9
        assert config.thaccept == 0.5

    def test_wstruct_within_paper_range(self):
        config = CupidConfig()
        assert 0.5 <= config.wstruct <= 0.6
        assert 0.5 <= config.wstruct_leaf <= 0.6

    def test_wstruct_lower_for_leaves(self):
        """Table 1: wstruct is 'lower for leaf-leaf pairs'."""
        config = CupidConfig()
        assert config.wstruct_leaf <= config.wstruct

    def test_token_weights_sum_to_one(self):
        assert sum(CupidConfig().token_type_weights.values()) == pytest.approx(1.0)

    def test_content_and_concept_weigh_most(self):
        """Section 5.3: content and concept tokens get greater weight."""
        weights = CupidConfig().token_type_weights
        heavy = min(weights[TokenType.CONTENT], weights[TokenType.CONCEPT])
        light = max(
            weights[TokenType.NUMBER],
            weights[TokenType.SPECIAL],
            weights[TokenType.COMMON],
        )
        assert heavy > light

    def test_as_table_lists_all_table1_parameters(self):
        table = CupidConfig().as_table()
        for name in ("thns", "thhigh", "thlow", "cinc", "cdec", "thaccept"):
            assert name in table


class TestValidation:
    def test_thhigh_must_exceed_thaccept(self):
        with pytest.raises(ConfigError):
            CupidConfig(thhigh=0.5, thaccept=0.5).validate()

    def test_thlow_must_be_below_thaccept(self):
        with pytest.raises(ConfigError):
            CupidConfig(thlow=0.5, thaccept=0.5).validate()

    def test_cinc_must_be_at_least_one(self):
        with pytest.raises(ConfigError):
            CupidConfig(cinc=0.9).validate()

    def test_cdec_must_be_in_unit_interval(self):
        with pytest.raises(ConfigError):
            CupidConfig(cdec=0.0).validate()
        with pytest.raises(ConfigError):
            CupidConfig(cdec=1.5).validate()

    def test_thresholds_must_be_probabilities(self):
        with pytest.raises(ConfigError):
            CupidConfig(thns=1.5).validate()
        with pytest.raises(ConfigError):
            CupidConfig(thhigh=-0.1).validate()

    def test_leaf_count_ratio_at_least_one(self):
        with pytest.raises(ConfigError):
            CupidConfig(leaf_count_ratio=0.5).validate()

    def test_negative_leaf_prune_depth_rejected(self):
        with pytest.raises(ConfigError):
            CupidConfig(leaf_prune_depth=-1).validate()

    def test_dense_engine_is_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FORCE_STDLIB", raising=False)
        config = CupidConfig()
        assert config.engine == "dense"
        assert config.dense_backend == "auto"

    def test_force_stdlib_env_overrides_backend_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_FORCE_STDLIB", "1")
        assert CupidConfig().dense_backend == "stdlib"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigError):
            CupidConfig(engine="hash").validate()

    def test_unknown_dense_backend_rejected(self):
        with pytest.raises(ConfigError):
            CupidConfig(dense_backend="torch").validate()

    def test_auto_store_is_default(self):
        config = CupidConfig()
        assert config.store == "auto"
        assert config.block_size == 0  # 0 = auto tile size

    def test_workers_default_serial(self):
        config = CupidConfig()
        forced = os.environ.get("REPRO_FORCE_WORKERS")
        # In-process unless opted in (or the CI matrix forces workers).
        assert config.workers == (int(forced) if forced else 1)
        assert config.parallel_leaf_threshold >= 1

    def test_negative_workers_rejected(self):
        with pytest.raises(ConfigError):
            CupidConfig(workers=-1).validate()
        CupidConfig(workers=0).validate()  # 0 = one per CPU core

    def test_parallel_threshold_must_be_positive(self):
        with pytest.raises(ConfigError):
            CupidConfig(parallel_leaf_threshold=0).validate()

    def test_unknown_store_rejected(self):
        with pytest.raises(ConfigError):
            CupidConfig(store="sharded").validate()

    def test_negative_block_size_rejected(self):
        with pytest.raises(ConfigError):
            CupidConfig(block_size=-1).validate()

    def test_blocked_store_accepted(self):
        CupidConfig(store="blocked", block_size=32).validate()

    def test_auto_store_accepted(self):
        CupidConfig(store="auto").validate()

    def test_auto_store_threshold_must_be_positive(self):
        with pytest.raises(ConfigError):
            CupidConfig(auto_store_leaf_threshold=0).validate()
        CupidConfig(store="auto", auto_store_leaf_threshold=1).validate()

    def test_max_prepared_schemas_non_negative(self):
        with pytest.raises(ConfigError):
            CupidConfig(max_prepared_schemas=-1).validate()
        CupidConfig(max_prepared_schemas=0).validate()  # 0 = unbounded
        CupidConfig(max_prepared_schemas=4).validate()

    def test_token_weights_must_sum_to_one(self):
        weights = {t: 0.0 for t in TokenType}
        weights[TokenType.CONTENT] = 0.5
        with pytest.raises(ConfigError):
            CupidConfig(token_type_weights=weights).validate()

    def test_negative_token_weight_rejected(self):
        weights = {
            TokenType.CONTENT: 1.2,
            TokenType.CONCEPT: -0.2,
            TokenType.NUMBER: 0.0,
            TokenType.SPECIAL: 0.0,
            TokenType.COMMON: 0.0,
        }
        with pytest.raises(ConfigError):
            CupidConfig(token_type_weights=weights).validate()


class TestReplace:
    def test_replace_returns_validated_copy(self):
        base = CupidConfig()
        changed = base.replace(cinc=1.35)
        assert changed.cinc == 1.35
        assert base.cinc == 1.2  # original untouched

    def test_replace_rejects_invalid_change(self):
        with pytest.raises(ConfigError):
            CupidConfig().replace(thhigh=0.2)

    def test_replace_keeps_other_fields(self):
        changed = CupidConfig(thns=0.7).replace(cinc=1.5)
        assert changed.thns == 0.7
