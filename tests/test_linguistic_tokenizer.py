"""Tests for repro.linguistic.tokenizer — Section 5.1 tokenization."""

import pytest

from repro.linguistic.tokenizer import split_camel, tokenize


class TestTokenize:
    def test_paper_example_polines(self):
        """'E.g. POLines -> {PO, Lines}' (Section 5.1)."""
        assert tokenize("POLines") == ["po", "lines"]

    @pytest.mark.parametrize(
        "name, expected",
        [
            ("Customer_Number", ["customer", "number"]),
            ("UnitOfMeasure", ["unit", "of", "measure"]),
            ("unitPrice", ["unit", "price"]),
            ("Street4", ["street", "4"]),
            ("e-mail", ["e", "mail"]),
            ("ItemNumber", ["item", "number"]),
            ("POBillTo", ["po", "bill", "to"]),
            ("stateProvince", ["state", "province"]),
            ("SSN", ["ssn"]),
            ("order.date", ["order", "date"]),
            ("XMLSchema", ["xml", "schema"]),
            ("ITEM", ["item"]),
            ("x", ["x"]),
        ],
    )
    def test_splitting_rules(self, name, expected):
        assert tokenize(name) == expected

    def test_special_symbol_kept_as_token(self):
        assert tokenize("Item#") == ["item", "#"]
        assert tokenize("#count") == ["#", "count"]

    def test_digits_split_from_letters(self):
        assert tokenize("4thStreet") == ["4", "th", "street"]

    def test_empty_name(self):
        assert tokenize("") == []

    def test_whitespace_separates(self):
        assert tokenize("Order Date") == ["order", "date"]

    def test_tokens_are_lowercase(self):
        for token in tokenize("CustomerOrderLine"):
            assert token == token.lower()


class TestSplitCamel:
    def test_acronym_then_word(self):
        assert split_camel("POLines") == ["PO", "Lines"]

    def test_plain_word(self):
        assert split_camel("street") == ["street"]

    def test_trailing_acronym(self):
        assert split_camel("customerID") == ["customer", "ID"]

    def test_digits(self):
        assert split_camel("Street42b") == ["Street", "42", "b"]
