"""Randomized parity fuzz harness: every engine tier vs the oracle.

The dense engine now has four interacting fast paths — dense
vectorization, the distinct-name linguistic kernel, the dirty-set
incremental recompute, and the blocked tile store — whose pairwise
interactions no hand-picked test can cover. This suite generates
seeded random schema pairs across the axes that select those paths
(size × name repetition × tree/DAG shape × leaf_prune_depth ×
store × block size × kernel on/off × backend × threshold band ×
worker count) and asserts **bit-identical** lsim tables, wsim maps,
and leaf/non-leaf mappings against the reference engine on every one.
The ``workers`` variants force the tile-sharded parallel layer onto
every plane (``parallel_leaf_threshold=1``), so shard dispatch, op
forwarding, and crossing-stamp reconciliation are all under the same
bit-identity oracle as the serial paths.

Tier-1 runs :data:`N_TIER1_PAIRS` schema pairs under the fixed
:data:`FUZZ_SEED` (each pair checks :data:`VARIANTS_PER_PAIR` dense
variants, so ≥200 engine comparisons total); the full sweep
(:data:`N_FULL_PAIRS` pairs) runs with ``REPRO_FUZZ_FULL=1`` (select
it with ``-m fuzz``). Failures print the reproducing case via the
seed-report hook in ``conftest.py``::

    _case_params(<index>)   # -> the failing case's full description
"""

from __future__ import annotations

import os
import random

import pytest

from repro import CupidMatcher
from repro.config import CupidConfig
from repro.datasets.generator import PerturbationConfig, SchemaGenerator
from repro.linguistic.kernel import FactoredLsimTable
from repro.model.element import ElementKind, SchemaElement
from repro.structure.blocked import BlockedSimilarityStore
from repro.structure.dense import numpy_available
from repro.tree.schema_tree import verify_interval_encoding

pytestmark = pytest.mark.fuzz

#: One seed pins the whole sweep: case ``i`` is a pure function of
#: ``(FUZZ_SEED, i)``, so a failing index reproduces everywhere.
FUZZ_SEED = 20260728

#: Schema pairs checked in tier-1 (each pair runs VARIANTS_PER_PAIR
#: dense-vs-reference comparisons: 48 × 7 = 336 cases ≥ the 200-case
#: floor).
N_TIER1_PAIRS = 48
VARIANTS_PER_PAIR = 7

#: Full-sweep pair count (REPRO_FUZZ_FULL=1).
N_FULL_PAIRS = 400


# ----------------------------------------------------------------------
# Case generation
# ----------------------------------------------------------------------

def _case_params(index: int) -> dict:
    """The full description of fuzz case ``index`` (deterministic)."""
    rng = random.Random(FUZZ_SEED * 1_000_003 + index)
    params = {
        "index": index,
        "schema_seed": rng.randrange(1_000_000),
        "n_leaves": rng.randint(4, 24),
        "max_depth": rng.randint(2, 4),
        "fanout": rng.randint(3, 9),
        "name_repetition": rng.choice((0.0, 0.0, 0.3, 0.7, 0.9)),
        # similar pairs exercise cinc/whole-plane scaling, independent
        # pairs exercise the sparse strong-link regime.
        "pair_kind": rng.choice(("perturbed", "perturbed", "independent")),
        "dag_refints": rng.choice((0, 0, 1, 2)),
        "leaf_prune_depth": rng.choice((0, 0, 0, 1, 2)),
        "thlow": rng.choice((0.35, 0.35, 0.0)),
        "discount_optional_leaves": rng.random() < 0.8,
        "prune_by_leaf_count": rng.random() < 0.8,
        "use_refint_joins": rng.random() < 0.8,
        "extra_backend_stdlib": rng.random() < 0.3,
        "small_block_size": rng.choice((3, 5, 8, 16)),
    }
    return params


def _add_random_refints(schema, rng: random.Random, count: int) -> None:
    """Wire random referential constraints between two inner elements.

    Join-view augmentation then reifies them as shared-child DAG nodes,
    which is what drives the dense stores through their non-contiguous
    (gather-list) leaf index paths.
    """
    inners = [
        e
        for e in schema.elements
        if not e.is_atomic
        and e is not schema.root
        and any(c.is_atomic for c in schema.contained_children(e))
    ]
    if len(inners) < 2:
        return
    for n in range(count):
        source, target = rng.sample(inners, 2)
        columns = [
            c for c in schema.contained_children(source) if c.is_atomic
        ]
        refint = SchemaElement(
            name=f"fk_{source.name}_{target.name}_{n}",
            kind=ElementKind.REFINT,
            not_instantiated=True,
        )
        schema.add_element(refint)
        schema.add_containment(source, refint)
        schema.add_aggregation(refint, rng.choice(columns))
        # Referencing the table element directly is the documented
        # fallback path in repro.tree.refint._add_join_view.
        schema.add_reference(refint, target)


def _build_pair(params: dict):
    generator = SchemaGenerator(seed=params["schema_seed"])
    schema = generator.generate(
        name="fuzz_source",
        n_leaves=params["n_leaves"],
        max_depth=params["max_depth"],
        fanout=params["fanout"],
        name_repetition=params["name_repetition"],
    )
    if params["pair_kind"] == "perturbed":
        other, _ = generator.perturb(
            schema, PerturbationConfig(abbreviate=0.3, synonym=0.2)
        )
    else:
        other = SchemaGenerator(
            seed=params["schema_seed"] + 7919
        ).generate(
            name="fuzz_target",
            n_leaves=max(4, params["n_leaves"] - 2),
            max_depth=params["max_depth"],
            fanout=params["fanout"],
            name_repetition=params["name_repetition"],
        )
    if params["dag_refints"]:
        dag_rng = random.Random(params["schema_seed"] ^ 0xDA6)
        _add_random_refints(schema, dag_rng, params["dag_refints"])
        _add_random_refints(other, dag_rng, params["dag_refints"])
    return schema, other


def _shared_config_kwargs(params: dict) -> dict:
    """Config axes shared by the oracle and every dense variant."""
    return {
        "leaf_prune_depth": params["leaf_prune_depth"],
        "thlow": params["thlow"],
        "discount_optional_leaves": params["discount_optional_leaves"],
        "prune_by_leaf_count": params["prune_by_leaf_count"],
        "use_refint_joins": params["use_refint_joins"],
    }


def _variants(params: dict):
    """The dense-engine variants checked against the oracle (always
    VARIANTS_PER_PAIR of them)."""
    variants = [
        ("flat+kernel", {"store": "flat"}),
        ("blocked+kernel", {"store": "blocked"}),
        (
            "blocked small tiles",
            {"store": "blocked", "block_size": params["small_block_size"]},
        ),
        ("flat no-kernel", {"store": "flat", "linguistic_kernel": False}),
        # Worker variants force the sharded layer onto every plane
        # regardless of size, so tiny fuzz pairs still cross the
        # process boundary (dispatch, merge, stamp reconciliation).
        (
            "flat workers=2",
            {"store": "flat", "workers": 2, "parallel_leaf_threshold": 1},
        ),
        (
            "blocked workers=2",
            {
                "store": "blocked",
                "workers": 2,
                "parallel_leaf_threshold": 1,
            },
        ),
    ]
    if params["extra_backend_stdlib"]:
        variants.append(
            (
                "blocked stdlib",
                {"store": "blocked", "dense_backend": "stdlib"},
            )
        )
    else:
        variants.append(
            (
                "blocked no-kernel",
                {"store": "blocked", "linguistic_kernel": False},
            )
        )
    return variants


# ----------------------------------------------------------------------
# Signatures (exact, path-keyed)
# ----------------------------------------------------------------------

def _mapping_signature(mapping):
    return sorted(
        (e.source_path, e.target_path, e.similarity) for e in mapping
    )


def _wsim_signature(result):
    source_paths = {n.node_id: n.path() for n in result.source_tree.nodes()}
    target_paths = {n.node_id: n.path() for n in result.target_tree.nodes()}
    return sorted(
        (source_paths[s], target_paths[t], value)
        for (s, t), value in result.treematch_result.wsim.items()
    )


def _check_case(index: int, record_property) -> None:
    params = _case_params(index)
    for key, value in params.items():
        record_property(key, value)
    schema, other = _build_pair(params)
    shared = _shared_config_kwargs(params)

    reference = CupidMatcher(
        config=CupidConfig(engine="reference", **shared)
    ).match(schema, other)
    # Migration oracle: on every generated tree/DAG shape, the
    # interval-encoded leaf sets / required flags / frontiers must
    # equal independently recomputed descendant sets (this covers the
    # refint-augmented DAG cases too — the trees here carry whatever
    # join views use_refint_joins wired in).
    verify_interval_encoding(reference.source_tree)
    verify_interval_encoding(reference.target_tree)
    ref_lsim = sorted(reference.lsim_table.items())
    ref_wsim = _wsim_signature(reference)
    ref_leaf = _mapping_signature(reference.leaf_mapping)
    ref_nonleaf = _mapping_signature(reference.nonleaf_mapping)

    for label, overrides in _variants(params):
        record_property("failing_variant", label)
        dense = CupidMatcher(
            config=CupidConfig(engine="dense", **shared, **overrides)
        ).match(schema, other)
        assert sorted(dense.lsim_table.items()) == ref_lsim, label
        assert _wsim_signature(dense) == ref_wsim, label
        assert _mapping_signature(dense.leaf_mapping) == ref_leaf, label
        assert (
            _mapping_signature(dense.nonleaf_mapping) == ref_nonleaf
        ), label
        if overrides.get("store") == "blocked":
            sims = dense.treematch_result.sims
            assert isinstance(sims, BlockedSimilarityStore)
            assert sims.tiles_touched() <= sims.tiles_total()
            assert sims.tiles_allocated() <= sims.tiles_touched()


# ----------------------------------------------------------------------
# Tier-1 sweep (capped) and the full sweep (env-gated)
# ----------------------------------------------------------------------

class TestFuzzParityTier1:
    @pytest.mark.parametrize("index", range(N_TIER1_PAIRS))
    def test_case(self, index, record_property):
        _check_case(index, record_property)

    def test_case_count_floor(self):
        """The tier-1 sweep must keep covering >= 200 comparisons."""
        assert N_TIER1_PAIRS * VARIANTS_PER_PAIR >= 200

    def test_axes_actually_vary(self):
        """Degenerate-generator guard: the sampled axes must all take
        more than one value across the tier-1 window."""
        seen = {
            key: set()
            for key in (
                "pair_kind", "dag_refints", "leaf_prune_depth",
                "thlow", "name_repetition",
            )
        }
        for index in range(N_TIER1_PAIRS):
            params = _case_params(index)
            for key in seen:
                seen[key].add(params[key])
        for key, values in seen.items():
            assert len(values) > 1, key

    def test_kernel_engaged_somewhere(self):
        """At least one tier-1 case must actually route through the
        factored kernel (otherwise the sweep lost its main subject)."""
        for index in range(N_TIER1_PAIRS):
            params = _case_params(index)
            schema, other = _build_pair(params)
            result = CupidMatcher(
                config=CupidConfig(**_shared_config_kwargs(params))
            ).match(schema, other)
            if isinstance(result.lsim_table, FactoredLsimTable):
                return
        pytest.fail("no tier-1 fuzz case exercised the kernel")


@pytest.mark.perf
@pytest.mark.skipif(
    not os.environ.get("REPRO_FUZZ_FULL"),
    reason="full fuzz sweep runs with REPRO_FUZZ_FULL=1",
)
class TestFuzzParityFull:
    @pytest.mark.parametrize("index", range(N_TIER1_PAIRS, N_FULL_PAIRS))
    def test_case(self, index, record_property):
        _check_case(index, record_property)


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
class TestFuzzForcedVectorization:
    """A slice of the sweep with the vectorization threshold forced to
    1, so the numpy tile paths run even on these small schemas."""

    @pytest.fixture(autouse=True)
    def _force_vectorization(self, monkeypatch):
        monkeypatch.setattr(
            BlockedSimilarityStore, "_VECTOR_MIN_CELLS", 1
        )

    @pytest.mark.parametrize("index", range(0, N_TIER1_PAIRS, 7))
    def test_case(self, index, record_property):
        record_property("forced_vectorization", True)
        _check_case(index, record_property)
