"""Tests for the CupidMatcher facade — the end-to-end pipeline."""

import pytest

from repro import CupidMatcher, CupidConfig, schema_from_tree
from repro.exceptions import MappingError
from repro.linguistic.thesaurus import empty_thesaurus


class TestFigure2Narrative:
    """The Section 4 walk-through on the Figure 2 running example."""

    def test_abbreviation_matches(self, figure2_result):
        pairs = figure2_result.leaf_mapping.path_pairs()
        assert (
            "PO.POLines.Item.Qty",
            "PurchaseOrder.Items.Item.Quantity",
        ) in pairs

    def test_acronym_matches(self, figure2_result):
        pairs = figure2_result.leaf_mapping.path_pairs()
        assert (
            "PO.POLines.Item.UoM",
            "PurchaseOrder.Items.Item.UnitOfMeasure",
        ) in pairs

    def test_synonym_context_disambiguation(self, figure2_result):
        """City/Street under POBillTo map under InvoiceTo, not DeliverTo,
        'because Bill is a synonym of Invoice but not of Deliver'."""
        pairs = figure2_result.leaf_mapping.path_pairs()
        assert (
            "PO.POBillTo.City",
            "PurchaseOrder.InvoiceTo.Address.City",
        ) in pairs
        assert (
            "PO.POShipTo.City",
            "PurchaseOrder.DeliverTo.Address.City",
        ) in pairs
        assert (
            "PO.POBillTo.City",
            "PurchaseOrder.DeliverTo.Address.City",
        ) not in pairs

    def test_count_matches_item_count(self, figure2_result):
        pairs = figure2_result.leaf_mapping.path_pairs()
        assert ("PO.POLines.Count", "PurchaseOrder.Items.ItemCount") in pairs

    def test_nonleaf_mapping_includes_parents(self, figure2_result):
        pairs = figure2_result.nonleaf_mapping.path_pairs()
        assert ("PO.POBillTo", "PurchaseOrder.InvoiceTo") in pairs
        assert ("PO.POShipTo", "PurchaseOrder.DeliverTo") in pairs
        assert ("PO", "PurchaseOrder") in pairs

    def test_wsim_accessor(self, figure2_result):
        value = figure2_result.wsim("POBillTo", "InvoiceTo")
        assert 0.0 < value <= 1.0

    def test_lsim_accessor(self, figure2_result):
        assert figure2_result.lsim(
            "POLines.Item.Qty", "Items.Item.Quantity"
        ) == pytest.approx(1.0)


class TestInitialMapping:
    def test_hint_raises_lsim(self, po_schema, purchase_order_schema):
        """Section 8.4: hinted pairs get the predefined maximum lsim."""
        matcher = CupidMatcher(thesaurus=empty_thesaurus())
        hinted = matcher.match(
            po_schema,
            purchase_order_schema,
            initial_mapping=[
                ("POLines.Item.UoM", "Items.Item.UnitOfMeasure"),
            ],
        )
        assert hinted.lsim(
            "POLines.Item.UoM", "Items.Item.UnitOfMeasure"
        ) == pytest.approx(1.0)

    def test_hint_recovers_match_without_thesaurus(
        self, po_schema, purchase_order_schema
    ):
        """Without a thesaurus UoM↔UnitOfMeasure is lost; a user hint
        brings it back — the user-interaction loop of Section 8.4."""
        matcher = CupidMatcher(thesaurus=empty_thesaurus())
        plain = matcher.match(po_schema, purchase_order_schema)
        pair = (
            "PO.POLines.Item.UoM",
            "PurchaseOrder.Items.Item.UnitOfMeasure",
        )
        assert pair not in plain.leaf_mapping.path_pairs()

        hinted = matcher.match(
            po_schema,
            purchase_order_schema,
            initial_mapping=[
                ("POLines.Item.UoM", "Items.Item.UnitOfMeasure"),
            ],
        )
        assert pair in hinted.leaf_mapping.path_pairs()

    def test_unknown_hint_path_raises(self, po_schema, purchase_order_schema):
        matcher = CupidMatcher()
        with pytest.raises(MappingError):
            matcher.match(
                po_schema,
                purchase_order_schema,
                initial_mapping=[("Nope.Nada", "Items")],
            )


class TestConfigurationEffects:
    def test_lazy_expansion_runs(self, po_schema, purchase_order_schema):
        matcher = CupidMatcher(config=CupidConfig(lazy_expansion=True))
        result = matcher.match(po_schema, purchase_order_schema)
        assert len(result.leaf_mapping) > 0

    def test_lazy_and_eager_agree_on_unshared_schemas(
        self, po_schema, purchase_order_schema
    ):
        """Without shared types the two construction modes coincide."""
        eager = CupidMatcher().match(po_schema, purchase_order_schema)
        lazy = CupidMatcher(
            config=CupidConfig(lazy_expansion=True)
        ).match(po_schema, purchase_order_schema)
        assert eager.leaf_mapping.path_pairs() == lazy.leaf_mapping.path_pairs()

    def test_empty_thesaurus_degrades_gracefully(self, tiny_pair):
        source, target = tiny_pair
        result = CupidMatcher(thesaurus=empty_thesaurus()).match(source, target)
        # Identical names still match without any thesaurus.
        assert any(
            e.source_name == "Qty" or e.target_name == "Quantity"
            for e in result.leaf_mapping
        ) or len(result.leaf_mapping) >= 0  # no crash is the key assertion

    def test_config_validated_at_construction(self):
        with pytest.raises(Exception):
            CupidMatcher(config=CupidConfig(thhigh=0.1))

    def test_result_exposes_all_artifacts(self, figure2_result):
        assert figure2_result.lsim_table is not None
        assert figure2_result.source_tree is not None
        assert figure2_result.treematch_result.compared_pairs > 0


class TestSharedTypesEndToEnd:
    def test_context_dependent_mapping(self):
        """Canonical example 6 shape, straight through the facade."""
        from repro.io.oo_model import parse_oo_model

        schema1 = parse_oo_model(
            """
            class PurchaseOrder (OrderNumber: integer,
                                 ShippingAddress: Address,
                                 BillingAddress: Address)
            class Address (Street: string, City: string)
            """,
            "S1",
        )
        schema2 = parse_oo_model(
            """
            class PurchaseOrder (OrderNumber: integer,
                                 ShippingAddress: ShipTo,
                                 BillingAddress: BillTo)
            class ShipTo (Street: string, City: string)
            class BillTo (Street: string, City: string)
            """,
            "S2",
        )
        result = CupidMatcher().match(schema1, schema2)
        pairs = result.leaf_mapping.path_pairs()
        assert (
            "S1.PurchaseOrder.ShippingAddress.Street",
            "S2.PurchaseOrder.ShippingAddress.Street",
        ) in pairs
        assert (
            "S1.PurchaseOrder.BillingAddress.Street",
            "S2.PurchaseOrder.BillingAddress.Street",
        ) in pairs
        # No context crossover.
        assert (
            "S1.PurchaseOrder.ShippingAddress.Street",
            "S2.PurchaseOrder.BillingAddress.Street",
        ) not in pairs
