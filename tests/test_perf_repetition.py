"""Perf-regression smoke for the duplicate-heavy repetition workload.

The recorded floor lives beside the batch-session benchmark results
(``benchmarks/results/BENCH_repetition_floor.json``): steady-state
``match_many`` on the name-repetition workload must finish under its
``floor_ms``. The ceiling is deliberately generous (~20x the recorded
measurement) — like ``test_perf_smoke``, this exists to catch
order-of-magnitude regressions in CI (the distinct-name kernel
silently disabled, the dirty-set recompute degrading to full rescans,
session caches bypassed), not to benchmark. Real numbers live in
``benchmarks/bench_scalability.py`` and ``bench_batch_session.py``.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro import MatchSession
from repro.datasets.generator import PerturbationConfig, SchemaGenerator

pytestmark = pytest.mark.perf

_FLOOR_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir,
    "benchmarks", "results", "BENCH_repetition_floor.json",
)


@pytest.fixture(scope="module")
def floor_record():
    with open(_FLOOR_PATH) as handle:
        return json.load(handle)


def _workload(spec):
    generator = SchemaGenerator(seed=spec["seed"])
    source = generator.generate(
        n_leaves=spec["n_leaves"],
        max_depth=spec["max_depth"],
        fanout=spec["fanout"],
        name_repetition=spec["name_repetition"],
    )
    perturbation = PerturbationConfig(**spec["perturbation"])
    targets = []
    for i in range(spec["n_targets"]):
        perturber = SchemaGenerator(seed=spec["seed"] + 100 + i)
        copy, _ = perturber.perturb(source, perturbation)
        targets.append(copy)
    return source, targets


def test_repetition_steady_state_under_floor(floor_record):
    source, targets = _workload(floor_record["workload"])
    session = MatchSession()
    warm = session.match_many(source, targets)
    assert all(len(result.leaf_mapping) > 0 for result in warm)

    best = None
    for _ in range(2):
        start = time.perf_counter()
        session.match_many(source, targets)
        elapsed = (time.perf_counter() - start) * 1000.0
        if best is None or elapsed < best:
            best = elapsed

    floor_ms = floor_record["floor_ms"]
    assert best < floor_ms, (
        f"steady-state match_many on the repetition workload took "
        f"{best:.1f} ms (recorded floor {floor_ms} ms, last measured "
        f"{floor_record['measured_steady_state_ms']} ms) — a hot path "
        "has regressed badly"
    )


def test_repetition_workload_engages_kernel_caches(floor_record):
    """The floor only means something if the tiers it guards are on."""
    source, targets = _workload(floor_record["workload"])
    session = MatchSession()
    session.match_many(source, targets)
    info = session.cache_info()
    # Every prepared schema grew a distinct-name vocabulary table...
    assert info["vocabulary_tables"] == info["prepared_schemas"] > 0
    assert info["vocabulary_distinct_names"] > 0
    # ...and the workload is actually duplicate-heavy: far fewer
    # distinct names than elements.
    total_elements = sum(
        len(schema.elements) for schema in [source] + targets
    )
    assert info["vocabulary_distinct_names"] < total_elements / 2

    result = session.match(source, targets[0])
    stats = session.pipeline.run_stats(result)
    assert stats["kernel_hit_rate"] > 0.5
    assert stats["recompute_skipped_pairs"] >= 0
