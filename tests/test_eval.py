"""Tests for metrics, reporting, and the experiment runners."""

import pytest

from repro.datasets.canonical import canonical_examples
from repro.datasets.gold import GoldMapping
from repro.eval.metrics import evaluate_mapping
from repro.eval.reporting import render_table
from repro.eval.runner import (
    run_canonical_example,
    run_cidx_excel,
    run_rdb_star,
)
from repro.mapping.mapping import Mapping, MappingElement


def _mapping(*pairs):
    mapping = Mapping("S", "T")
    for source, target, score in pairs:
        mapping.add(
            MappingElement(
                source_path=tuple(source.split(".")),
                target_path=tuple(target.split(".")),
                similarity=score,
            )
        )
    return mapping


class TestMetrics:
    def test_perfect_match(self):
        gold = GoldMapping.from_pairs([("a", "b")])
        quality = evaluate_mapping(_mapping(("S.a", "T.b", 0.9)), gold)
        assert quality.precision == 1.0
        assert quality.recall == 1.0
        assert quality.f1 == 1.0

    def test_false_positive_hurts_precision(self):
        gold = GoldMapping.from_pairs([("a", "b")])
        quality = evaluate_mapping(
            _mapping(("S.a", "T.b", 0.9), ("S.x", "T.y", 0.5)), gold
        )
        assert quality.precision == 0.5
        assert quality.recall == 1.0

    def test_missing_hurts_recall(self):
        gold = GoldMapping.from_pairs([("a", "b"), ("c", "d")])
        quality = evaluate_mapping(_mapping(("S.a", "T.b", 0.9)), gold)
        assert quality.recall == 0.5

    def test_duplicate_gold_hit_counts_once(self):
        gold = GoldMapping.from_pairs([("a", "b")])
        quality = evaluate_mapping(
            _mapping(("S.a", "T.b", 0.9), ("S2.a", "T2.b", 0.8)), gold
        )
        assert quality.gold_found == 1
        assert quality.true_positives == 2

    def test_empty_mapping(self):
        gold = GoldMapping.from_pairs([("a", "b")])
        quality = evaluate_mapping(_mapping(), gold)
        assert quality.precision == 0.0
        assert quality.recall == 0.0
        assert quality.f1 == 0.0

    def test_summary_format(self):
        gold = GoldMapping.from_pairs([("a", "b")])
        summary = evaluate_mapping(_mapping(("S.a", "T.b", 0.9)), gold).summary()
        assert "P=1.00" in summary and "R=1.00" in summary


class TestRenderTable:
    def test_alignment_and_content(self):
        table = render_table(
            ["Name", "Value"],
            [["thns", 0.5], ["thhigh", 0.6]],
            title="Table 1",
        )
        assert "Table 1" in table
        assert "| thns" in table
        assert "0.6" in table
        lines = [l for l in table.splitlines() if l.startswith("|")]
        assert len({len(l) for l in lines}) == 1  # all rows same width

    def test_empty_rows(self):
        table = render_table(["A"], [])
        assert "| A" in table


class TestRunners:
    """Full experiment reproduction — the headline integration tests."""

    @pytest.mark.parametrize("example_id", [1, 2, 3, 4, 5, 6])
    def test_table2_rows_match_paper(self, example_id):
        example = canonical_examples()[example_id - 1]
        verdicts = run_canonical_example(example)
        assert verdicts.matches_paper(), verdicts.details

    def test_table2_aux_matters(self):
        """Without LSPD/annotations the footnote rows degrade."""
        example3 = canonical_examples()[2]
        without = run_canonical_example(example3, with_aux=False)
        assert without.dike.startswith("N")
        assert without.momis.startswith("N")
        # Cupid needs no auxiliary user input on this example.
        assert without.cupid == "Y"

    def test_cidx_excel_element_rows_all_found(self):
        out = run_cidx_excel()
        assert all(row[2] == "Yes" for row in out["element_rows"])

    def test_cidx_excel_leaf_recall_full(self):
        out = run_cidx_excel()
        assert out["leaf_quality"].recall == 1.0

    def test_cidx_excel_reproduces_naive_false_positive(self):
        """Section 9.2: 'CIDX.contactName is mapped to both
        Excel.contactName and Excel.companyName' — a known artifact of
        the naïve 1:n generator that we must reproduce, not fix."""
        out = run_cidx_excel()
        targets = {
            e.target_name
            for e in out["leaf_mapping"]
            if e.source_name == "ContactName"
        }
        assert {"contactName", "companyName"} <= targets

    def test_rdb_star_claims(self):
        out = run_rdb_star()
        assert all(row[1] == "Yes" for row in out["claim_rows"])

    def test_rdb_star_column_target_recall(self):
        out = run_rdb_star()
        assert out["column_target_recall"] == 1.0

    def test_rdb_star_without_joins_loses_claims(self):
        """Ablation: join views are load-bearing for the Sales and
        Geography claims."""
        with_joins = run_rdb_star(use_refint_joins=True)
        without = run_rdb_star(use_refint_joins=False)
        yes_with = sum(1 for _, v in with_joins["claim_rows"] if v == "Yes")
        yes_without = sum(1 for _, v in without["claim_rows"] if v == "Yes")
        assert yes_with >= yes_without
