"""Observability layer: tracer, metrics registry, request correlation.

The tracer's contract is that it is *observational only*: a run with
tracing armed must produce bit-identical results to one with it
disarmed — including through the worker-pool boundary, where the
sharded-op reply grows an extra span payload. The span tree must stay
*connected* across that boundary: worker spans built in child
processes re-parent under the dispatching op span and pick up its
request id, so one traced request reads as one tree from the HTTP
edge down to individual shard scans.

The metrics registry's contract is single-bookkeeping: ``/stats``
snapshots and ``GET /metrics`` exposition read the same instrument
objects, so their counts agree by construction (asserted end to end
over a real socket below).
"""

from __future__ import annotations

import io
import json
import os
import re
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import CupidMatcher, SchemaRepository
from repro.config import CupidConfig
from repro.datasets.generator import PerturbationConfig, SchemaGenerator
from repro.obs import trace
from repro.obs.metrics import MetricsRegistry, search_latency_schema
from repro.serving import Deadline, MatchHTTPServer, MatchService


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------


def _pair(n_leaves=48, seed=29):
    generator = SchemaGenerator(seed=seed)
    schema = generator.generate(n_leaves=n_leaves, max_depth=3)
    other, _ = generator.perturb(
        schema, PerturbationConfig(abbreviate=0.3, synonym=0.2)
    )
    return schema, other


def _signature(result):
    return sorted(
        (e.source_path, e.target_path, e.similarity)
        for e in result.leaf_mapping
    )


def _walk(span):
    yield span
    for child in span.children:
        yield from _walk(child)


def _find_all(spans, name):
    return [
        node
        for root in spans
        for node in _walk(root)
        if node.name == name
    ]


@pytest.fixture()
def tracer():
    """Arm the tracer for one test; restore the ambient state after
    (CI's REPRO_FORCE_TRACE job keeps it armed process-wide)."""
    was_armed = trace.armed()
    trace.arm()
    trace.reset()
    yield
    trace.reset()
    if not was_armed:
        trace.disarm()


# ----------------------------------------------------------------------
# Tracer core
# ----------------------------------------------------------------------


class TestTracer:
    def test_disarmed_sites_are_noops(self):
        was_armed = trace.armed()
        trace.disarm()
        try:
            assert trace.start_span("x") is None
            trace.end_span(None)  # must tolerate the disarmed return
            with trace.span("x") as scope:
                assert scope is None
            trace.annotate(ignored=1)
            assert trace.current_span() is None
            assert trace.roots() == []
        finally:
            if was_armed:
                trace.arm()

    def test_nesting_follows_call_structure(self, tracer):
        with trace.span("outer", depth=0):
            with trace.span("inner"):
                trace.annotate(work=7)
        roots = trace.roots()
        assert [r.name for r in roots] == ["outer"]
        outer = roots[0]
        assert outer.counters == {"depth": 0}
        assert outer.wall_s >= 0.0
        assert [c.name for c in outer.children] == ["inner"]
        assert outer.children[0].counters == {"work": 7}

    def test_explicit_lifetime_spans_pair_up(self, tracer):
        opened = trace.start_span("explicit")
        assert trace.current_span() is opened
        child = trace.start_span("child")
        trace.end_span(child)
        trace.end_span(opened, status=200)
        assert trace.current_span() is None
        (root,) = trace.roots()
        assert root.counters["status"] == 200
        assert [c.name for c in root.children] == ["child"]

    def test_request_id_stamps_spans_and_logs(self, tracer):
        token = trace.bind_request_id("r000042")
        try:
            with trace.span("op"):
                pass
            stream = io.StringIO()
            trace.log_event("probe", stream=stream, detail="x")
        finally:
            trace.unbind_request_id(token)
        (root,) = trace.roots()
        assert root.request_id == "r000042"
        record = json.loads(stream.getvalue())
        assert record["event"] == "probe"
        assert record["request_id"] == "r000042"
        assert record["detail"] == "x"
        assert "ts" in record
        # Unbound again: log lines drop the id rather than leak it.
        stream = io.StringIO()
        trace.log_event("probe", stream=stream)
        assert "request_id" not in json.loads(stream.getvalue())

    def test_adopt_reparents_and_restamps(self, tracer):
        worker = trace.Span.begin("parallel.worker.scan", rows=4)
        worker.request_id = "stale-worker-id"
        worker.finish()
        token = trace.bind_request_id("r000007")
        try:
            parent = trace.start_span("parallel.scan")
            trace.adopt(parent, [worker.to_dict()])
            trace.end_span(parent)
        finally:
            trace.unbind_request_id(token)
        (root,) = trace.roots()
        (adopted,) = root.children
        assert adopted.name == "parallel.worker.scan"
        assert adopted.counters == {"rows": 4}
        assert adopted.request_id == "r000007"  # restamped, not stale

    def test_take_roots_drains(self, tracer):
        with trace.span("once"):
            pass
        assert [r.name for r in trace.take_roots()] == ["once"]
        assert trace.roots() == []

    def test_span_tree_rendering(self, tracer):
        with trace.span("parent", k=1):
            with trace.span("child"):
                pass
        (root,) = trace.take_roots()
        tree = trace.span_tree(root)
        assert tree["name"] == "parent"
        assert tree["counters"] == {"k": 1}
        assert [c["name"] for c in tree["children"]] == ["child"]
        assert tree["wall_ms"] >= tree["children"][0]["wall_ms"]


# ----------------------------------------------------------------------
# Worker-pool boundary
# ----------------------------------------------------------------------


class TestWorkerSpans:
    def _match(self, schema, other, **overrides):
        config = CupidConfig().replace(
            workers=2, parallel_leaf_threshold=1, **overrides
        )
        return CupidMatcher(config=config).match(schema, other)

    def test_worker_spans_reparent_under_the_op(self, tracer):
        schema, other = _pair()
        token = trace.bind_request_id("r000011")
        try:
            result = self._match(schema, other)
        finally:
            trace.unbind_request_id(token)
        facts = result.treematch_result.sims.describe()
        assert facts["parallel_scan_ops"] > 0  # the pool really ran
        roots = trace.take_roots()
        scans = _find_all(roots, "parallel.scan")
        assert scans, "no parallel.scan span under the traced run"
        worker_spans = [
            child
            for op in scans
            for child in op.children
            if child.name == "parallel.worker.scan"
        ]
        assert worker_spans, "worker spans did not re-parent at the barrier"
        here = os.getpid()
        assert any(w.pid != here for w in worker_spans), (
            "worker spans should carry the worker process's pid"
        )
        for worker in worker_spans:
            assert worker.request_id == "r000011"
            assert worker.counters["rows"] > 0
        # The whole tree hangs off one root: pipeline.run.
        assert [r.name for r in roots] == ["pipeline.run"]

    def test_bit_identity_with_tracing_armed(self):
        schema, other = _pair(n_leaves=32, seed=31)
        was_armed = trace.armed()
        trace.disarm()
        try:
            dark = self._match(schema, other)
        finally:
            if was_armed:
                trace.arm()
        trace.arm()
        trace.reset()
        try:
            lit = self._match(schema, other)
        finally:
            trace.reset()
            if not was_armed:
                trace.disarm()
        assert _signature(dark) == _signature(lit)


# ----------------------------------------------------------------------
# Chrome trace export
# ----------------------------------------------------------------------


class TestChromeExport:
    REQUIRED = {"name", "cat", "ph", "ts", "dur", "pid", "tid", "args"}

    def test_export_is_valid_trace_event_json(self, tracer, tmp_path):
        schema, other = _pair(n_leaves=48, seed=37)
        config = CupidConfig().replace(workers=2, parallel_leaf_threshold=1)
        CupidMatcher(config=config).match(schema, other)
        path = tmp_path / "trace.json"
        written = trace.write_chrome_trace(str(path))
        assert written > 0
        document = json.loads(path.read_text())
        assert set(document) == {"traceEvents", "displayTimeUnit"}
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        assert len(events) == written
        for event in events:
            assert self.REQUIRED <= set(event)
            assert event["ph"] == "X"
            assert event["cat"] == "repro"
            assert isinstance(event["ts"], int) and event["ts"] > 0
            assert isinstance(event["dur"], int) and event["dur"] >= 0
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            assert isinstance(event["args"], dict)
        names = {event["name"] for event in events}
        assert "pipeline.run" in names
        assert "parallel.worker.scan" in names
        # Cross-process events really carry distinct pids.
        assert len({event["pid"] for event in events}) >= 2


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------


class TestMetricsRegistry:
    def test_get_or_create_identity(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_x_total", "x", endpoint="search")
        b = registry.counter("repro_x_total", "x", endpoint="search")
        c = registry.counter("repro_x_total", "x", endpoint="match")
        assert a is b and a is not c

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_y_total", "y")
        with pytest.raises(ValueError):
            registry.histogram("repro_y_total", "y")

    def test_counter_and_gauge_exposition(self):
        registry = MetricsRegistry()
        registry.counter("repro_hits_total", "Hits.", endpoint="search").inc(3)
        registry.gauge("repro_level", "Level.").set(2)
        text = registry.render_prometheus()
        assert "# HELP repro_hits_total Hits." in text
        assert "# TYPE repro_hits_total counter" in text
        assert 'repro_hits_total{endpoint="search"} 3' in text
        assert "# TYPE repro_level gauge" in text
        assert "repro_level 2" in text

    def test_histogram_exposition_is_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_lat_seconds", "Latency.")
        for seconds in (0.001, 0.002, 0.002, 5.0):
            hist.record(seconds)
        text = registry.render_prometheus()
        assert "# TYPE repro_lat_seconds histogram" in text
        buckets = re.findall(
            r'repro_lat_seconds_bucket\{le="([^"]+)"\} (\d+)', text
        )
        assert buckets, "no bucket samples rendered"
        assert buckets[-1][0] == "+Inf"
        counts = [int(count) for _, count in buckets]
        assert counts == sorted(counts), "bucket counts must be cumulative"
        assert counts[-1] == 4
        assert re.search(r"repro_lat_seconds_count 4\b", text)
        sum_value = float(
            re.search(r"repro_lat_seconds_sum (\S+)", text).group(1)
        )
        assert sum_value == pytest.approx(5.005)

    def test_exposition_lines_are_well_formed(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total", "A.", endpoint="search").inc()
        registry.histogram("repro_b_seconds", "B.").record(0.01)
        registry.callback_gauge("repro_c", lambda: 1.5, "C.")
        sample = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
            r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"'
            r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'
            r" -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$"
        )
        for line in registry.render_prometheus().splitlines():
            if not line or line.startswith("#"):
                continue
            assert sample.match(line), f"malformed sample line: {line!r}"

    def test_search_latency_schema_feeds_registry(self):
        registry = MetricsRegistry()
        stats = {"time_index_ms": 2.0, "time_match_ms": 5.0}
        block = search_latency_schema(stats, 0.01, registry=registry)
        assert block == {
            "total_ms": 10.0, "index_ms": 2.0, "match_ms": 5.0,
        }
        for phase in ("total", "index", "match"):
            hist = registry.histogram(
                "repro_search_phase_seconds", phase=phase
            )
            assert hist.count == 1
        # Without a registry the block is identical — the CLI path
        # records nothing, so daemon metrics can't double-count.
        assert search_latency_schema(stats, 0.01) == block


# ----------------------------------------------------------------------
# Request correlation
# ----------------------------------------------------------------------


class TestRequestCorrelation:
    def test_deadline_error_names_request(self):
        token = trace.bind_request_id("r000099")
        try:
            deadline = Deadline(0.000001)
            time.sleep(0.002)
            with pytest.raises(Exception) as excinfo:
                deadline.check("unit test")
        finally:
            trace.unbind_request_id(token)
        assert "[request r000099]" in str(excinfo.value)
        # Without a bound id the message stays clean.
        deadline = Deadline(0.000001)
        time.sleep(0.002)
        with pytest.raises(Exception) as excinfo:
            deadline.check("unit test")
        assert "[request" not in str(excinfo.value)


# ----------------------------------------------------------------------
# HTTP edge: ids, /metrics, trace blocks, slow-request log
# ----------------------------------------------------------------------


def _corpus(n=3, size=40, seed=5):
    generator = SchemaGenerator(seed=seed)
    return [
        generator.generate(
            name=f"obs{i}", n_leaves=size, name_repetition=0.5
        )
        for i in range(n)
    ]


class TestHTTPObservability:
    @pytest.fixture()
    def server(self, tmp_path):
        # Workers + a floor-level parallel threshold so a traced
        # search exercises the full path down to shard processes.
        config = CupidConfig().replace(
            workers=2, parallel_leaf_threshold=1
        )
        repository = SchemaRepository(str(tmp_path / "repo"), config=config)
        for schema in _corpus():
            repository.ingest(schema)
        repository.save()
        service = MatchService(repository, sessions=2, queue_depth=16)
        httpd = MatchHTTPServer(("127.0.0.1", 0), service)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        yield httpd
        httpd.shutdown()
        httpd.server_close()
        service.close()

    def _request(self, server, path, body=None, headers=None):
        data = (
            json.dumps(body).encode("utf-8") if body is not None else None
        )
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}{path}",
            data=data,
            headers={"Content-Type": "application/json", **(headers or {})},
        )
        with urllib.request.urlopen(request, timeout=60) as response:
            raw = response.read()
            rid = response.headers.get("X-Request-Id")
            if response.headers.get_content_type() == "application/json":
                return json.loads(raw), rid
            return raw.decode("utf-8"), rid

    def _query(self):
        perturbed, _ = SchemaGenerator(seed=71).perturb(
            _corpus()[0], PerturbationConfig(abbreviate=0.3, synonym=0.2)
        )
        return perturbed

    def test_request_ids_minted_and_echoed(self, server):
        _, first = self._request(server, "/health")
        _, second = self._request(server, "/health")
        assert re.fullmatch(r"r\d{6}", first)
        assert re.fullmatch(r"r\d{6}", second)
        assert first != second
        _, echoed = self._request(
            server, "/health", headers={"X-Request-Id": "client-abc"}
        )
        assert echoed == "client-abc"

    def test_metrics_exposition_agrees_with_stats(self, server):
        from repro.io.json_io import schema_to_dict

        query = schema_to_dict(self._query())
        for _ in range(2):
            self._request(
                server, "/search", {"schema": query, "k": 1, "candidates": 1}
            )
        stats, _ = self._request(server, "/stats")
        text, _ = self._request(server, "/metrics")
        count = int(re.search(
            r'repro_request_latency_seconds_count\{endpoint="search"\} (\d+)',
            text,
        ).group(1))
        assert count == stats["endpoints"]["search"]["count"] == 2
        assert "# TYPE repro_request_latency_seconds histogram" in text
        assert "repro_uptime_seconds" in text
        phase_count = int(re.search(
            r'repro_search_phase_seconds_count\{phase="total"\} (\d+)',
            text,
        ).group(1))
        assert phase_count == 2  # one observation per request, no more

    def test_traced_search_yields_connected_tree(self, server):
        from repro.io.json_io import schema_to_dict

        response, rid = self._request(
            server,
            "/search",
            {
                "schema": schema_to_dict(self._query()),
                "k": 1,
                "candidates": 1,
                "trace": True,
            },
        )
        block = response["trace"]
        assert block["request_id"] == rid
        (serve,) = block["spans"]
        assert serve["name"] == "serve.search"

        def names(node):
            yield node["name"], node.get("request_id")
            for child in node.get("children", ()):
                yield from names(child)

        seen = dict(names(serve))
        for expected in (
            "serve.search",
            "repo.search",
            "repo.search.index",
            "repo.search.match",
            "pipeline.run",
            "parallel.worker.scan",
        ):
            assert expected in seen, f"span {expected} missing from tree"
            assert seen[expected] == rid, (
                f"span {expected} lost the request id"
            )
        # The daemon runs in-process: the collected root ties the same
        # tree to the HTTP edge span.
        edges = [
            root for root in trace.roots()
            if root.name == "http.request" and root.request_id == rid
        ]
        assert edges, "http.request root span not collected"
        assert _find_all(edges, "serve.search"), (
            "serve span did not re-parent under the HTTP edge"
        )

    def test_error_bodies_carry_request_id(self, server):
        try:
            self._request(
                server, "/search", {"k": 2},
                headers={"X-Request-Id": "err-1"},
            )
        except urllib.error.HTTPError as error:
            payload = json.loads(error.read())
            assert error.code == 400
            assert payload["error"] == "BadRequestError"
            assert payload["request_id"] == "err-1"
            assert error.headers.get("X-Request-Id") == "err-1"
        else:
            pytest.fail("bad request unexpectedly succeeded")

    def test_slow_request_log_fires(self, tmp_path, capsys):
        config = CupidConfig().replace(slow_request_ms=0.0001)
        repository = SchemaRepository(
            str(tmp_path / "slow-repo"), config=config
        )
        for schema in _corpus(n=1, size=10):
            repository.ingest(schema)
        repository.save()
        service = MatchService(repository, sessions=1, queue_depth=4)
        httpd = MatchHTTPServer(("127.0.0.1", 0), service)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            _, rid = self._request(httpd, "/health")
        finally:
            httpd.shutdown()
            httpd.server_close()
            service.close()
        lines = [
            json.loads(line)
            for line in capsys.readouterr().err.splitlines()
            if line.startswith("{")
        ]
        slow = [l for l in lines if l.get("event") == "slow_request"]
        assert slow, "no slow_request log line emitted"
        record = slow[0]
        assert record["request_id"] == rid
        assert record["path"] == "/health"
        assert record["status"] == 200
        assert record["elapsed_ms"] >= record["threshold_ms"]
