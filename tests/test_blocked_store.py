"""Blocked-vs-flat store equivalence under randomized op interleavings.

The engine-level fuzz suite (``test_fuzz_parity.py``) only drives the
stores through TreeMatch's access pattern. These property tests attack
the stores directly: any seeded interleaving of ``set_ssim`` /
``scale_block`` calls (with reads mixed in, so lazy tiles materialize
at arbitrary points) must leave :class:`BlockedSimilarityStore` and
:class:`DenseSimilarityStore` with byte-identical matrix reads — every
ssim/lsim/wsim cell, every ``structural_fraction``, and the identical
dirty-set crossing stamps — on both the numpy and stdlib backends and
across tile sizes (including non-power-of-two edges).
"""

from __future__ import annotations

import random

import pytest

from repro.config import CupidConfig
from repro.datasets.generator import PerturbationConfig, SchemaGenerator
from repro.linguistic.matcher import LinguisticMatcher, LsimTable
from repro.linguistic.lexicon import builtin_thesaurus
from repro.model.datatypes import default_compatibility_table
from repro.structure.blocked import (
    DEFAULT_BLOCK_SIZE,
    BlockedSimilarityStore,
    resolve_block_size,
)
from repro.structure.dense import DenseSimilarityStore, numpy_available
from repro.tree.construction import construct_schema_tree

BACKENDS = ["stdlib"] + (["numpy"] if numpy_available() else [])


def _tree_pair(seed: int, n_leaves: int = 24):
    generator = SchemaGenerator(seed=seed)
    schema = generator.generate(n_leaves=n_leaves, max_depth=3)
    copy, _ = generator.perturb(
        schema, PerturbationConfig(abbreviate=0.3, synonym=0.2)
    )
    return construct_schema_tree(schema), construct_schema_tree(copy)


def _lsim_table(source_tree, target_tree, config):
    """A real (dict-form) lsim table for the pair."""
    matcher = LinguisticMatcher(builtin_thesaurus(), config)
    prep_s = matcher.prepare(source_tree.schema)
    prep_t = matcher.prepare(target_tree.schema)
    table = matcher.compute_prepared(prep_s, prep_t)
    # Force the plain dict form so both stores take the scatter path
    # (the factored gather path is covered by the engine fuzz suite).
    dict_table = LsimTable()
    for (id1, id2), value in table.items():
        dict_table._table[(id1, id2)] = value
    return dict_table


def _make_stores(seed, backend, block_size, n_leaves=24):
    source_tree, target_tree = _tree_pair(seed, n_leaves)
    config = CupidConfig(dense_backend=backend, block_size=block_size)
    compat = default_compatibility_table()
    table = _lsim_table(source_tree, target_tree, config)
    flat = DenseSimilarityStore(
        table, config, compat, source_tree, target_tree
    )
    blocked = BlockedSimilarityStore(
        table, config, compat, source_tree, target_tree
    )
    return source_tree, target_tree, flat, blocked


def _assert_stores_equal(source_tree, target_tree, flat, blocked):
    """Byte-identical reads over the full plane + identical stamps."""
    s_leaves = source_tree.leaves()
    t_leaves = target_tree.leaves()
    for s in s_leaves:
        for t in t_leaves:
            assert blocked.ssim(s, t) == flat.ssim(s, t)
            assert blocked.lsim(s, t) == flat.lsim(s, t)
            assert blocked.wsim(s, t) == flat.wsim(s, t)
    assert blocked.mutation_seq == flat.mutation_seq
    assert blocked._row_seq == flat._row_seq
    assert blocked._col_seq == flat._col_seq


def _run_interleaving(seed, backend, block_size, ops=120):
    source_tree, target_tree, flat, blocked = _make_stores(
        seed, backend, block_size
    )
    rng = random.Random(seed * 31 + ops)
    s_leaves = source_tree.leaves()
    t_leaves = target_tree.leaves()
    s_nodes = source_tree.postorder()
    t_nodes = target_tree.postorder()
    factors = (0.5, 0.9, 1.0, 1.2, 2.0, 2.4)

    for step in range(ops):
        op = rng.random()
        if op < 0.35:
            s = rng.choice(s_leaves)
            t = rng.choice(t_leaves)
            value = rng.choice((0.0, 0.2, 0.45, 0.5, 0.55, 0.9, 1.0, 1.4))
            flat.set_ssim(s, t, value)
            blocked.set_ssim(s, t, value)
        elif op < 0.75:
            s = rng.choice(s_nodes)
            t = rng.choice(t_nodes)
            factor = rng.choice(factors)
            assert flat.scale_block(s, t, factor) == blocked.scale_block(
                s, t, factor
            )
        else:
            # Reads interleave with writes so tiles materialize (or
            # stay lazy) at arbitrary points of the op sequence.
            s = rng.choice(s_nodes)
            t = rng.choice(t_nodes)
            s_frontier = s.leaves_with_required_flag()
            t_frontier = t.leaves_with_required_flag()
            assert blocked.structural_fraction(
                s, t, s_frontier, t_frontier, 0.5, True
            ) == flat.structural_fraction(
                s, t, s_frontier, t_frontier, 0.5, True
            )
            seq = rng.randrange(max(1, flat.mutation_seq + 1))
            assert blocked.block_dirty_since(s, t, seq) == (
                flat.block_dirty_since(s, t, seq)
            )
        if step % 40 == 39:
            _assert_stores_equal(source_tree, target_tree, flat, blocked)
    _assert_stores_equal(source_tree, target_tree, flat, blocked)
    return blocked


class TestRandomizedInterleavings:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_default_tiles(self, seed, backend, record_property):
        record_property("seed", seed)
        record_property("backend", backend)
        _run_interleaving(seed, backend, block_size=0)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("block_size", [3, 8, 16])
    def test_small_tiles(self, block_size, backend, record_property):
        """Tiny (and non-power-of-two) tiles: every block op crosses
        tile boundaries, edge tiles are everywhere."""
        record_property("block_size", block_size)
        record_property("backend", backend)
        _run_interleaving(7, backend, block_size=block_size)

    @pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
    def test_forced_vectorization(self, monkeypatch, record_property):
        """Drive the numpy region paths of both stores on every op."""
        monkeypatch.setattr(DenseSimilarityStore, "_VECTOR_MIN_CELLS", 1)
        record_property("forced_vectorization", True)
        _run_interleaving(13, "numpy", block_size=5)

    def test_overlay_solidify_transition(self, record_property):
        """An op sequence long enough to push overlay tiles over the
        solidify threshold mid-run (tiny limit forced)."""
        record_property("scenario", "overlay-solidify")
        source_tree, target_tree, flat, blocked = _make_stores(
            19, "stdlib", block_size=16
        )
        blocked._overlay_limit = 4
        rng = random.Random(19)
        s_leaves = source_tree.leaves()
        t_leaves = target_tree.leaves()
        for _ in range(200):
            s = rng.choice(s_leaves)
            t = rng.choice(t_leaves)
            value = rng.choice((0.0, 0.3, 0.6, 1.0))
            flat.set_ssim(s, t, value)
            blocked.set_ssim(s, t, value)
        assert blocked.tiles_allocated() > 0
        _assert_stores_equal(source_tree, target_tree, flat, blocked)


class TestBlockedStoreUnit:
    def test_resolve_block_size(self):
        assert resolve_block_size(0) == DEFAULT_BLOCK_SIZE
        assert resolve_block_size(17) == 17

    def test_virtual_reads_allocate_nothing(self):
        """Pure reads — including full strong-link scans — must leave
        every tile virtual: allocation happens on first write only."""
        source_tree, target_tree, _flat, blocked = _make_stores(
            23, "stdlib", block_size=8
        )
        for s in source_tree.leaves()[:6]:
            for t in target_tree.leaves()[:6]:
                blocked.ssim(s, t)
                blocked.wsim(s, t)
        root_s, root_t = source_tree.root, target_tree.root
        blocked.structural_fraction(
            root_s,
            root_t,
            root_s.leaves_with_required_flag(),
            root_t.leaves_with_required_flag(),
            0.5,
            True,
        )
        assert blocked.tiles_allocated() == 0
        assert blocked.overlay_cells() == 0
        assert blocked.tiles_touched() > 0

    def test_noop_writes_stay_lazy(self):
        """Writes that do not change the value (scale by 1.0, rewrite
        of the base value) must not allocate tiles either."""
        source_tree, target_tree, _flat, blocked = _make_stores(
            23, "stdlib", block_size=8
        )
        s = source_tree.leaves()[0]
        t = target_tree.leaves()[0]
        blocked.set_ssim(s, t, blocked.ssim(s, t))
        blocked.scale_block(source_tree.root, target_tree.root, 1.0)
        assert blocked.tiles_allocated() == 0
        assert blocked.overlay_cells() == 0

    def test_describe_occupancy_fields(self):
        source_tree, target_tree, _flat, blocked = _make_stores(
            29, "stdlib", block_size=8
        )
        blocked.scale_block(source_tree.root, target_tree.root, 0.9)
        facts = blocked.describe()
        assert facts["store"] == "blocked"
        assert facts["block_size"] == 8
        assert facts["tiles_allocated"] <= facts["tiles_touched"]
        assert facts["tiles_touched"] <= facts["tiles_total"]
        assert facts["store_bytes"] > 0
        # A whole-plane cdec scale on a perturbed-copy pair changes
        # most cells: the plane must actually have solidified.
        assert facts["tiles_allocated"] > 0

    def test_store_bytes_tracks_allocation(self):
        source_tree, target_tree, _flat, blocked = _make_stores(
            29, "stdlib", block_size=8
        )
        before = blocked.store_bytes()
        blocked.scale_block(source_tree.root, target_tree.root, 0.9)
        assert blocked.store_bytes() > before
