"""Tests for name similarity (Sections 5.2–5.3)."""

import pytest

from repro.config import CupidConfig
from repro.linguistic.name_similarity import (
    element_name_similarity,
    substring_similarity,
    token_set_similarity,
    token_similarity,
)
from repro.linguistic.tokens import Token, TokenType


def _tokens(*texts):
    return [Token(t) for t in texts]


class TestSubstringSimilarity:
    def test_identical_prefix(self):
        assert substring_similarity("customername", "customer") > 0.4

    def test_common_suffix(self):
        assert substring_similarity("itemcount", "count") > 0.3

    def test_short_overlap_is_noise(self):
        """Overlaps under 3 characters score zero."""
        assert substring_similarity("ab", "ac") == 0.0
        assert substring_similarity("lines", "likes") == 0.0

    def test_disjoint_words(self):
        assert substring_similarity("street", "quantity") == 0.0

    def test_bounded_by_ceiling(self):
        assert substring_similarity("orders", "order", ceiling=0.8) <= 0.8

    def test_empty_strings(self):
        assert substring_similarity("", "abc") == 0.0


class TestTokenSimilarity:
    def test_identical_tokens_score_one(self, thesaurus, config):
        assert token_similarity(
            Token("city"), Token("city"), thesaurus, config
        ) == 1.0

    def test_thesaurus_strength_used(self, thesaurus, config):
        score = token_similarity(
            Token("invoice"), Token("bill"), thesaurus, config
        )
        assert score == thesaurus.relatedness("invoice", "bill")

    def test_substring_fallback(self, thesaurus, config):
        score = token_similarity(
            Token("customername"), Token("customer"), thesaurus, config
        )
        assert 0.0 < score < 1.0


class TestTokenSetSimilarity:
    def test_paper_formula_on_identical_sets(self, thesaurus, config):
        tokens = _tokens("purchase", "order")
        assert token_set_similarity(tokens, tokens, thesaurus, config) == 1.0

    def test_bidirectional_average(self, thesaurus, config):
        """ns = (Σ best forward + Σ best backward) / (|T1| + |T2|)."""
        t1 = _tokens("item")
        t2 = _tokens("item", "count")
        # forward: item->item = 1; backward: item->1, count->0ish.
        score = token_set_similarity(t1, t2, thesaurus, config)
        assert 0.5 < score < 1.0

    def test_empty_set_scores_zero(self, thesaurus, config):
        assert token_set_similarity([], _tokens("x"), thesaurus, config) == 0.0

    def test_ignored_tokens_excluded(self, thesaurus, config):
        with_ignored = [Token("unit"), Token("of", ignored=True), Token("measure")]
        without = _tokens("unit", "measure")
        assert token_set_similarity(
            with_ignored, without, thesaurus, config
        ) == 1.0

    def test_symmetry(self, thesaurus, config):
        t1 = _tokens("customer", "name")
        t2 = _tokens("client", "title")
        assert token_set_similarity(t1, t2, thesaurus, config) == (
            pytest.approx(token_set_similarity(t2, t1, thesaurus, config))
        )

    def test_range(self, thesaurus, config):
        t1 = _tokens("a1", "b2", "c3")
        t2 = _tokens("quantity", "price")
        score = token_set_similarity(t1, t2, thesaurus, config)
        assert 0.0 <= score <= 1.0


class TestElementNameSimilarity:
    def test_identical_names(self, normalizer, thesaurus, config):
        n = normalizer.normalize("CustomerName")
        assert element_name_similarity(n, n, thesaurus, config) == 1.0

    def test_abbreviation_equates_names(self, normalizer, thesaurus, config):
        """Qty vs Quantity must be fully similar after expansion."""
        qty = normalizer.normalize("Qty")
        quantity = normalizer.normalize("Quantity")
        assert element_name_similarity(qty, quantity, thesaurus, config) == 1.0

    def test_uom_vs_unit_of_measure(self, normalizer, thesaurus, config):
        uom = normalizer.normalize("UoM")
        full = normalizer.normalize("UnitOfMeasure")
        assert element_name_similarity(uom, full, thesaurus, config) == 1.0

    def test_synonym_names_score_high(self, normalizer, thesaurus, config):
        bill = normalizer.normalize("POBillTo")
        invoice = normalizer.normalize("InvoiceTo")
        ship = normalizer.normalize("DeliverTo")
        bill_invoice = element_name_similarity(bill, invoice, thesaurus, config)
        bill_deliver = element_name_similarity(bill, ship, thesaurus, config)
        assert bill_invoice > bill_deliver

    def test_unrelated_names_score_low(self, normalizer, thesaurus, config):
        a = normalizer.normalize("Quantity")
        b = normalizer.normalize("Street")
        assert element_name_similarity(a, b, thesaurus, config) < 0.3

    def test_missing_token_type_penalized(self, normalizer, thesaurus, config):
        """Street4 vs Street: the number token has no counterpart."""
        street4 = normalizer.normalize("Street4")
        street = normalizer.normalize("Street")
        score = element_name_similarity(street4, street, thesaurus, config)
        assert 0.5 < score < 1.0

    def test_number_tokens_distinguish(self, normalizer, thesaurus, config):
        """Street1 vs Street1 beats Street1 vs Street2."""
        s1 = normalizer.normalize("Street1")
        s1b = normalizer.normalize("street1")
        s2 = normalizer.normalize("street2")
        same = element_name_similarity(s1, s1b, thesaurus, config)
        different = element_name_similarity(s1, s2, thesaurus, config)
        assert same > different

    def test_empty_vs_anything(self, normalizer, thesaurus, config):
        """A name of only stopwords has no comparable tokens."""
        of = normalizer.normalize("of")
        street = normalizer.normalize("Street")
        assert element_name_similarity(of, street, thesaurus, config) == 0.0
