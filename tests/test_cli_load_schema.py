"""CLI schema loading: every supported extension dispatches and
round-trips; unknown extensions fail loudly with a ReproError."""

from __future__ import annotations

import pytest

from repro.cli import load_schema
from repro.exceptions import ReproError
from repro.io.json_io import schema_from_json, schema_to_json
from repro.model.schema import Schema

_SQL = """
CREATE TABLE Customers (
  CustomerID int PRIMARY KEY,
  CompanyName varchar(40) NOT NULL,
  PostalCode varchar(10)
);
"""

_XML = """
<schema name="PurchaseOrder">
  <element name="Items">
    <attribute name="itemCount" type="integer"/>
    <element name="Item">
      <attribute name="Quantity" type="integer"/>
    </element>
  </element>
</schema>
"""

_DTD = """
<!ELEMENT po (header)>
<!ELEMENT header (#PCDATA)>
<!ATTLIST header
  ponumber CDATA #REQUIRED
  podate CDATA #IMPLIED>
"""

_OO = """
class PurchaseOrder (OrderNumber: integer (key),
                     ProductName: string)
"""

#: extension -> (file content, an element name that must be present).
SUPPORTED = {
    ".sql": (_SQL, "CustomerID"),
    ".xml": (_XML, "Quantity"),
    ".dtd": (_DTD, "ponumber"),
    ".oo": (_OO, "OrderNumber"),
}


def _write(tmp_path, extension, content):
    path = tmp_path / f"schema{extension}"
    path.write_text(content)
    return str(path)


class TestExtensionDispatch:
    @pytest.mark.parametrize("extension", sorted(SUPPORTED))
    def test_supported_extension_loads(self, tmp_path, extension):
        content, expected_element = SUPPORTED[extension]
        schema = load_schema(_write(tmp_path, extension, content))
        assert isinstance(schema, Schema)
        assert schema.element_named(expected_element) is not None

    @pytest.mark.parametrize("extension", sorted(SUPPORTED))
    def test_supported_extension_round_trips_via_json(
        self, tmp_path, extension
    ):
        """Loading any format, serializing to .json, and loading that
        file again must preserve the element names."""
        content, _ = SUPPORTED[extension]
        schema = load_schema(_write(tmp_path, extension, content))
        json_path = tmp_path / "roundtrip.json"
        json_path.write_text(schema_to_json(schema))
        reloaded = load_schema(str(json_path))
        assert isinstance(reloaded, Schema)
        assert (
            sorted(e.name for e in reloaded.elements)
            == sorted(e.name for e in schema.elements)
        )

    def test_json_extension_loads(self, tmp_path):
        schema = load_schema(
            _write(tmp_path, ".sql", _SQL)
        )
        json_path = tmp_path / "db.json"
        json_path.write_text(schema_to_json(schema))
        loaded = load_schema(str(json_path))
        assert loaded.name == schema.name

    def test_uppercase_extension_is_normalized(self, tmp_path):
        path = tmp_path / "DB.SQL"
        path.write_text(_SQL)
        schema = load_schema(str(path))
        assert schema.element_named("CustomerID") is not None

    @pytest.mark.parametrize(
        "filename", ["schema.weird", "schema.txt", "schema", "schema."]
    )
    def test_unknown_extension_raises_repro_error(self, tmp_path, filename):
        path = tmp_path / filename
        path.write_text("whatever")
        with pytest.raises(ReproError) as excinfo:
            load_schema(str(path))
        message = str(excinfo.value)
        assert "cannot infer schema format" in message
        # The error teaches the supported formats.
        for extension in (".sql", ".xml", ".dtd", ".oo", ".json"):
            assert extension in message

    def test_missing_file_raises_os_error(self, tmp_path):
        with pytest.raises(OSError):
            load_schema(str(tmp_path / "nope.sql"))
