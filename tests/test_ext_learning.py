"""Tests for incremental thesaurus learning (Section 9.3)."""

import pytest

from repro import CupidMatcher
from repro.linguistic.learning import ThesaurusLearner, _looks_like_abbreviation
from repro.linguistic.normalizer import Normalizer
from repro.linguistic.thesaurus import empty_thesaurus
from repro.mapping.mapping import Mapping, MappingElement
from repro.model.builder import schema_from_tree


def _mapping(*pairs):
    mapping = Mapping("S", "T")
    for source, target in pairs:
        mapping.add(
            MappingElement(
                source_path=tuple(source.split(".")),
                target_path=tuple(target.split(".")),
                similarity=1.0,
            )
        )
    return mapping


@pytest.fixture
def learner():
    return ThesaurusLearner(Normalizer(empty_thesaurus()))


class TestAlignment:
    def test_single_differing_token_aligned(self, learner):
        mapping = _mapping(("S.Order.InvoiceDate", "T.Order.BillDate"))
        assert learner.observe(mapping) == 1
        proposals = learner.proposals()
        assert len(proposals) == 1
        assert {proposals[0].term_a, proposals[0].term_b} == {
            "invoice", "bill",
        }
        assert proposals[0].kind == "synonym"

    def test_identical_names_yield_nothing(self, learner):
        assert learner.observe(_mapping(("S.A.City", "T.B.City"))) == 0

    def test_multiple_differences_skipped(self, learner):
        """Ambiguous alignments are not guessed at."""
        mapping = _mapping(("S.A.InvoiceTotal", "T.B.BillSum"))
        assert learner.observe(mapping) == 0

    def test_abbreviation_detected(self, learner):
        mapping = _mapping(("S.Item.ShipQty", "T.Item.ShipQuantity"))
        learner.observe(mapping)
        proposals = learner.proposals()
        assert proposals[0].kind == "abbreviation"
        assert proposals[0].term_a == "qty"
        assert proposals[0].term_b == "quantity"

    def test_evidence_accumulates(self, learner):
        for _ in range(3):
            learner.observe(
                _mapping(("S.Order.InvoiceDate", "T.Order.BillDate"))
            )
        proposal = learner.proposals()[0]
        assert proposal.evidence == 3
        assert proposal.confidence > 0.7

    def test_min_evidence_filters(self):
        learner = ThesaurusLearner(
            Normalizer(empty_thesaurus()), min_evidence=2
        )
        learner.observe(_mapping(("S.A.InvoiceDate", "T.B.BillDate")))
        assert learner.proposals() == []


class TestAbbreviationHeuristic:
    @pytest.mark.parametrize(
        "a, b, expected",
        [
            ("qty", "quantity", ("qty", "quantity")),
            ("num", "number", ("num", "number")),
            ("quantity", "qty", ("qty", "quantity")),  # order-insensitive
            ("invoice", "bill", None),                  # genuine synonym
            ("x", "xylophone", None),                   # too short
        ],
    )
    def test_detection(self, a, b, expected):
        assert _looks_like_abbreviation(a, b) == expected


class TestLearnedThesaurus:
    def test_materialization(self, learner):
        learner.observe(_mapping(("S.Order.InvoiceDate", "T.Order.BillDate")))
        learner.observe(_mapping(("S.Item.ShipQty", "T.Item.ShipQuantity")))
        thesaurus = learner.learned_thesaurus()
        assert thesaurus.relatedness("invoice", "bill") is not None
        assert thesaurus.expansion("qty") == ("quantity",)

    def test_merge_over_base(self, learner, thesaurus):
        learner.observe(_mapping(("S.A.MonikerText", "T.B.NameText")))
        merged = learner.learned_thesaurus(base=thesaurus)
        assert merged.relatedness("moniker", "name") is not None
        assert merged.expansion("po") is not None  # base kept

    def test_learning_loop_improves_second_match(self):
        """The full workflow: match -> user validates -> learn ->
        re-match a *new* schema pair with the learned vocabulary."""
        source1 = schema_from_tree(
            "S1", {"Order": {"InvoiceDate": "date", "Total": "money"}}
        )
        target1 = schema_from_tree(
            "T1", {"Order": {"BillDate": "date", "Total": "money"}}
        )
        validated = _mapping(("S1.Order.InvoiceDate", "T1.Order.BillDate"))

        learner = ThesaurusLearner(Normalizer(empty_thesaurus()))
        learner.observe(validated)
        learned = learner.learned_thesaurus(base=empty_thesaurus())

        source2 = schema_from_tree(
            "S2", {"Payment": {"Invoice": "integer", "Paid": "date"}}
        )
        target2 = schema_from_tree(
            "T2", {"Payment": {"Bill": "integer", "Paid": "date"}}
        )
        before = CupidMatcher(thesaurus=empty_thesaurus()).match(
            source2, target2
        )
        after = CupidMatcher(thesaurus=learned).match(source2, target2)
        pair = ("S2.Payment.Invoice", "T2.Payment.Bill")
        assert pair not in before.leaf_mapping.path_pairs()
        assert pair in after.leaf_mapping.path_pairs()
        # And the learned synonym is visible in lsim directly.
        assert after.lsim("Payment.Invoice", "Payment.Bill") > (
            before.lsim("Payment.Invoice", "Payment.Bill")
        )

    def test_invalid_confidence_rejected(self):
        with pytest.raises(ValueError):
            ThesaurusLearner(
                Normalizer(empty_thesaurus()), base_confidence=0.0
            )
