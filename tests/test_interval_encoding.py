"""Tests for the pre/post-order interval leaf encoding.

The encoding (``SchemaTree.reindex``) replaces the old per-node leaf
caches: every node carries ``pre``/``post``/``level``/``subtree_size``
and — for pure subtrees — the contiguous window ``[leaf_lo, leaf_hi)``
of the global leaf order. These tests cover the migration oracle, the
unindex-on-mutation safety net (the stale-cache bug class this PR
removes), join-view augmentation after a completed build, and the
observational helpers the encoding enables (stripe ownership,
tile-alignment stats).
"""

from __future__ import annotations

import pytest

from repro import CupidMatcher, MatchSession
from repro.config import CupidConfig
from repro.exceptions import SchemaError
from repro.io.sql_ddl import parse_sql_ddl
from repro.linguistic.lexicon import builtin_thesaurus
from repro.linguistic.matcher import LinguisticMatcher, LsimTable
from repro.model.datatypes import default_compatibility_table
from repro.structure.blocked import BlockedSimilarityStore
from repro.structure.parallel import available_cpu_count, stripe_owned_subtrees
from repro.tree.construction import construct_schema_tree
from repro.tree.lazy import construct_schema_tree_lazy
from repro.tree.refint import augment_with_join_views
from repro.tree.schema_tree import verify_interval_encoding

_DDL_S = """
CREATE TABLE Customer (
  CustomerID int PRIMARY KEY,
  Name varchar(40),
  Address varchar(60)
);
CREATE TABLE PurchaseOrder (
  OrderID int PRIMARY KEY,
  ProductName varchar(40),
  CustomerID int REFERENCES Customer(CustomerID)
);
"""

_DDL_T = """
CREATE TABLE Customer (
  CustID int PRIMARY KEY,
  CustomerName varchar(40),
  Address varchar(60)
);
CREATE TABLE Orders (
  OrderNo int PRIMARY KEY,
  Product varchar(40),
  CustID int REFERENCES Customer(CustID)
);
"""


def _wsim_signature(result):
    source_paths = {n.node_id: n.path() for n in result.source_tree.nodes()}
    target_paths = {n.node_id: n.path() for n in result.target_tree.nodes()}
    return sorted(
        (source_paths[s], target_paths[t], value)
        for (s, t), value in result.treematch_result.wsim.items()
    )


def _mapping_signature(mapping):
    return sorted(
        (e.source_path, e.target_path, e.similarity) for e in mapping
    )


class TestIntervalOracle:
    """``verify_interval_encoding`` is the migration oracle: it
    recomputes leaf sets, required flags, frontiers, and window
    arithmetic from scratch and must agree with the encoding."""

    def test_oracle_passes_on_eager_tree(self):
        tree = construct_schema_tree(parse_sql_ddl(_DDL_S, "Orders"))
        verify_interval_encoding(tree)

    def test_oracle_passes_on_lazy_tree(self):
        tree = construct_schema_tree_lazy(parse_sql_ddl(_DDL_S, "Orders"))
        verify_interval_encoding(tree)

    def test_oracle_passes_on_augmented_dag(self):
        tree = construct_schema_tree(parse_sql_ddl(_DDL_S, "Orders"))
        added = augment_with_join_views(tree)
        assert added  # the FK must have produced a join view
        verify_interval_encoding(tree)

    def test_oracle_detects_corrupted_window(self):
        tree = construct_schema_tree(parse_sql_ddl(_DDL_S, "Orders"))
        customer = tree.node_for_path("Customer")
        assert customer.pure and customer.leaf_hi - customer.leaf_lo == 3
        customer.leaf_hi -= 1  # drop a leaf from the window
        with pytest.raises(SchemaError):
            verify_interval_encoding(tree)

    def test_oracle_detects_corrupted_subtree_size(self):
        tree = construct_schema_tree(parse_sql_ddl(_DDL_S, "Orders"))
        customer = tree.node_for_path("Customer")
        customer.subtree_size += 1
        with pytest.raises(SchemaError):
            verify_interval_encoding(tree)

    def test_reindex_env_hook_arms_oracle(self, monkeypatch):
        calls = []
        monkeypatch.setattr(
            "repro.tree.schema_tree.verify_interval_encoding",
            lambda tree: calls.append(tree),
        )
        monkeypatch.delenv("REPRO_INTERVAL_ORACLE", raising=False)
        construct_schema_tree(parse_sql_ddl(_DDL_S, "Orders"))
        assert not calls
        monkeypatch.setenv("REPRO_INTERVAL_ORACLE", "1")
        tree = construct_schema_tree(parse_sql_ddl(_DDL_S, "Orders"))
        assert calls and calls[-1] is tree


class TestMutationWithoutReindex:
    """Mutation unindexes the touched ancestry; a missed ``reindex()``
    must degrade to a fresh DFS, never to a stale answer (the bug
    class the old invalidate-the-caches protocol could miss)."""

    def test_shared_child_without_reindex_stays_correct(self):
        tree = construct_schema_tree(parse_sql_ddl(_DDL_S, "Orders"))
        po = tree.node_for_path("PurchaseOrder")
        address = tree.node_for_path("Customer", "Address")
        # Warm every interval-backed accessor first.
        before = set(po.leaves())
        po.leaves_with_required_flag()
        po.add_shared_child(address)  # DAG edge, no reindex
        assert po.pre == -1 and tree.root.pre == -1  # ancestry unindexed
        assert set(po.leaves()) == before | {address}
        assert po.leaf_count() == len(before) + 1
        assert address in po.leaves_with_required_flag()
        # Untouched subtrees keep answering out of their old stamp.
        customer = tree.node_for_path("Customer")
        assert customer.leaf_count() == 3
        tree.reindex()
        verify_interval_encoding(tree)
        assert set(po.leaves()) == before | {address}


class TestAugmentAfterCompletedBuild:
    """Regression for the refint stale-cache hazard: DAG join-view
    augmentation *after* a completed PreparedSchema build (every lazy
    tier warm, one match already run) must still yield exactly the
    strong-link counts — hence wsim and mappings — of a tree that was
    augmented before first use."""

    def test_late_augmentation_matches_fresh_build(self):
        source = parse_sql_ddl(_DDL_S, "S")
        target = parse_sql_ddl(_DDL_T, "T")
        fresh = CupidMatcher(
            config=CupidConfig(use_refint_joins=True)
        ).match(source, target)

        session = MatchSession(config=CupidConfig(use_refint_joins=False))
        prep_s = session.prepare(source)
        prep_t = session.prepare(target)
        prep_s.build_all()
        prep_t.build_all()
        session.match(source, target)  # completed build, caches hot
        assert augment_with_join_views(prep_s.tree)
        assert augment_with_join_views(prep_t.tree)
        verify_interval_encoding(prep_s.tree)
        verify_interval_encoding(prep_t.tree)
        late = session.match(source, target)

        assert _wsim_signature(late) == _wsim_signature(fresh)
        assert _mapping_signature(late.leaf_mapping) == (
            _mapping_signature(fresh.leaf_mapping)
        )
        assert _mapping_signature(late.nonleaf_mapping) == (
            _mapping_signature(fresh.nonleaf_mapping)
        )


class TestStripeOwnership:
    def test_owned_subtrees_per_stripe(self):
        tree = construct_schema_tree(parse_sql_ddl(_DDL_S, "Orders"))
        root = tree.root
        assert root.leaf_lo == 0 and root.leaf_hi == 6
        # Each table is a 3-leaf pure subtree; a stripe per table owns
        # exactly that table as its one maximal subtree.
        assert stripe_owned_subtrees(root, [(0, 3), (3, 6)]) == [1, 1]
        # The whole plane is owned by the root alone.
        assert stripe_owned_subtrees(root, [(0, 6)]) == [1]
        # A stripe splitting a table recurses down to the leaves it
        # wholly contains; empty stripes own nothing.
        assert stripe_owned_subtrees(root, [(0, 2), (3, 3)]) == [2, 0]

    def test_owned_subtrees_on_dag(self):
        tree = construct_schema_tree(parse_sql_ddl(_DDL_S, "Orders"))
        augment_with_join_views(tree)
        counts = stripe_owned_subtrees(tree.root, [(0, 3), (3, 6)])
        assert len(counts) == 2
        assert all(isinstance(c, int) and c >= 0 for c in counts)


class TestCpuDetection:
    def test_available_cpu_count_is_positive_int(self):
        count = available_cpu_count()
        assert isinstance(count, int) and count >= 1


class TestBlockedAlignmentStats:
    def test_describe_reports_subtree_alignment(self):
        config = CupidConfig(dense_backend="stdlib", block_size=4)
        source_tree = construct_schema_tree(parse_sql_ddl(_DDL_S, "S"))
        target_tree = construct_schema_tree(parse_sql_ddl(_DDL_T, "T"))
        matcher = LinguisticMatcher(builtin_thesaurus(), config)
        table = matcher.compute_prepared(
            matcher.prepare(source_tree.schema),
            matcher.prepare(target_tree.schema),
        )
        if not isinstance(table, LsimTable):
            table = LsimTable()
        blocked = BlockedSimilarityStore(
            table, config, default_compatibility_table(),
            source_tree, target_tree,
        )
        blocked.scale_block(source_tree.root, target_tree.root, 0.9)
        customer = source_tree.node_for_path("Customer")
        blocked.scale_block(customer, target_tree.root, 0.9)
        facts = blocked.describe()
        assert "subtree_windows" in facts
        assert "subtree_windows_tile_aligned" in facts
        assert 0 <= facts["subtree_windows_tile_aligned"] <= (
            facts["subtree_windows"]
        )
        # The root windows cover the whole axis, so at least one
        # cached window is tile-aligned by the hi == n escape hatch.
        assert facts["subtree_windows"] >= 1
