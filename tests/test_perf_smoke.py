"""Fast perf smoke (satellite of the dense-engine PR).

Budget-asserted at a deliberately generous ceiling: the point is to
catch order-of-magnitude regressions (e.g. the dense engine silently
falling back to per-pair probes) in CI, not to benchmark. The real
numbers live in ``benchmarks/bench_scalability.py``.
"""

from __future__ import annotations

import time

import pytest

from repro import CupidMatcher
from repro.config import CupidConfig
from repro.datasets.generator import PerturbationConfig, SchemaGenerator

pytestmark = pytest.mark.perf

#: Seconds allowed for a 40-leaf dense match (measured ~0.03 s; the
#: ceiling leaves two orders of magnitude of headroom for slow CI).
_BUDGET_SECONDS = 5.0


def _workload(n_leaves: int):
    generator = SchemaGenerator(seed=11)
    schema = generator.generate(n_leaves=n_leaves, max_depth=3)
    copy, _ = generator.perturb(
        schema, PerturbationConfig(abbreviate=0.3, synonym=0.2)
    )
    return schema, copy


def test_dense_match_within_budget():
    schema, copy = _workload(40)
    matcher = CupidMatcher()  # dense is the default engine
    start = time.perf_counter()
    result = matcher.match(schema, copy)
    elapsed = time.perf_counter() - start
    assert elapsed < _BUDGET_SECONDS, (
        f"40-leaf dense match took {elapsed:.2f}s (budget "
        f"{_BUDGET_SECONDS}s) — dense hot path has regressed badly"
    )
    assert result.treematch_result.engine == "dense"
    assert result.treematch_result.compared_pairs > 0


def test_stdlib_backend_within_budget():
    """The pure-stdlib fallback must stay usable, not just correct."""
    schema, copy = _workload(40)
    matcher = CupidMatcher(
        config=CupidConfig(dense_backend="stdlib")
    )
    start = time.perf_counter()
    matcher.match(schema, copy)
    elapsed = time.perf_counter() - start
    assert elapsed < _BUDGET_SECONDS


def test_run_stats_counters():
    """run_stats exposes the counters --stats prints, with sane values."""
    schema, copy = _workload(20)
    matcher = CupidMatcher()
    result = matcher.match(schema, copy)
    stats = matcher.run_stats(result)
    assert stats["engine"] == "dense"
    assert stats["store"] == "flat"
    assert stats["backend"] in ("numpy", "stdlib")
    assert stats["compared_pairs"] > 0
    assert stats["scaled_pairs"] > 0
    assert stats["lsim_entries"] == len(result.lsim_table)
    # The memoized linguistic phase must actually hit its caches.
    assert stats["token_sim_hits"] > stats["token_sim_misses"]
    assert 0.0 <= stats["token_sim_hit_rate"] <= 1.0
    for phase in ("linguistic", "trees", "treematch", "mapping"):
        assert stats[f"time_{phase}_ms"] >= 0.0


def test_reference_engine_has_no_memo():
    matcher = CupidMatcher(config=CupidConfig(engine="reference"))
    assert matcher.linguistic.memo is None
    schema, copy = _workload(10)
    result = matcher.match(schema, copy)
    stats = matcher.run_stats(result)
    assert stats["engine"] == "reference"
    assert "token_sim_hits" not in stats
    assert "backend" not in stats
