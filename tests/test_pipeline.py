"""Tests for the composable match-pipeline API.

The default pipeline must be behaviourally identical to the
``CupidMatcher`` facade (same stages, same artifacts); composition
(substitution, insertion, removal, registered variants) must produce
the documented alternative behaviours; adapted baselines must speak
the same ``Matcher`` protocol with ``CupidResult``-compatible output.
"""

from __future__ import annotations

import pytest

from repro import CupidMatcher, Matcher, MatchPipeline, baseline_pipeline
from repro.baselines.pathname import PathNameMatcher
from repro.baselines.topdown import TopDownMatcher
from repro.datasets.figure2 import figure2_po, figure2_purchase_order
from repro.exceptions import ReproError
from repro.pipeline import (
    STAGE_VARIANTS,
    MatchContext,
    MatchStage,
    TreeBuildStage,
)


def _mapping_signature(mapping):
    return sorted(
        (e.source_path, e.target_path, e.similarity) for e in mapping
    )


@pytest.fixture
def schemas():
    return figure2_po(), figure2_purchase_order()


class TestDefaultPipeline:
    def test_matches_cupid_matcher_exactly(self, schemas):
        source, target = schemas
        via_pipeline = MatchPipeline.default().run(source, target)
        via_matcher = CupidMatcher().match(source, target)
        assert _mapping_signature(via_pipeline.leaf_mapping) == (
            _mapping_signature(via_matcher.leaf_mapping)
        )
        assert _mapping_signature(via_pipeline.nonleaf_mapping) == (
            _mapping_signature(via_matcher.nonleaf_mapping)
        )
        assert sorted(via_pipeline.lsim_table.items()) == (
            sorted(via_matcher.lsim_table.items())
        )

    def test_stage_names(self):
        assert MatchPipeline.default().stage_names() == [
            "linguistic", "trees", "structural", "mapping",
        ]

    def test_timing_keys_are_backward_compatible(self, schemas):
        source, target = schemas
        result = MatchPipeline.default().run(source, target)
        assert set(result.timings) == {
            "linguistic", "trees", "treematch", "mapping",
        }
        assert all(v >= 0.0 for v in result.timings.values())

    def test_satisfies_matcher_protocol(self):
        assert isinstance(MatchPipeline.default(), Matcher)
        assert isinstance(CupidMatcher(), Matcher)

    def test_stages_satisfy_stage_protocol(self):
        for stage in MatchPipeline.default().stages:
            assert isinstance(stage, MatchStage)

    def test_cupid_matcher_exposes_pipeline(self):
        matcher = CupidMatcher()
        assert matcher.pipeline.linguistic is matcher.linguistic
        assert matcher.pipeline.treematch is matcher.treematch


class TestComposition:
    def test_get_stage_unknown_name(self):
        with pytest.raises(ReproError, match="no stage 'bogus'"):
            MatchPipeline.default().get_stage("bogus")

    def test_replace_stage_returns_new_pipeline(self):
        default = MatchPipeline.default()
        replaced = default.replace_stage("trees", TreeBuildStage())
        assert replaced is not default
        assert default.stage_names() == replaced.stage_names()

    def test_insert_after_observer_stage(self, schemas):
        source, target = schemas
        seen = []

        class ObserverStage:
            name = "observer"
            timing_key = "observer"

            def run(self, context: MatchContext) -> None:
                seen.append(len(context.lsim_table))
                context.extras["observed"] = True

        pipeline = MatchPipeline.default().insert_after(
            "linguistic", ObserverStage()
        )
        assert pipeline.stage_names() == [
            "linguistic", "observer", "trees", "structural", "mapping",
        ]
        result = pipeline.run(source, target)
        assert seen and seen[0] == len(result.lsim_table)
        assert "observer" in result.timings

    def test_insert_before(self):
        class Noop:
            name = "noop"
            timing_key = "noop"

            def run(self, context):
                pass

        pipeline = MatchPipeline.default().insert_before("mapping", Noop())
        assert pipeline.stage_names()[-2] == "noop"

    def test_without_mapping_stage_fails_loudly(self, schemas):
        source, target = schemas
        pipeline = MatchPipeline.default().without_stage("mapping")
        with pytest.raises(ReproError, match="without producing mappings"):
            pipeline.run(source, target)

    def test_duplicate_stage_names_rejected(self):
        default = MatchPipeline.default()
        with pytest.raises(ReproError, match="duplicate stage names"):
            default.insert_after("trees", TreeBuildStage())


class TestVariants:
    def test_mapping_one_to_one(self, schemas):
        source, target = schemas
        result = MatchPipeline.default().with_variant(
            "mapping", "one-to-one"
        ).run(source, target)
        assert result.leaf_mapping.is_one_to_one()

    def test_mapping_hungarian(self, schemas):
        pytest.importorskip(
            "scipy.optimize",
            reason="hungarian extraction needs scipy",
            # A scipy that cannot import (e.g. numpy missing) is as
            # absent as no scipy at all.
            exc_type=ImportError,
        )
        source, target = schemas
        result = MatchPipeline.default().with_variant(
            "mapping", "hungarian"
        ).run(source, target)
        assert result.leaf_mapping.is_one_to_one()

    def test_linguistic_off(self, schemas):
        source, target = schemas
        result = MatchPipeline.default().with_variant(
            "linguistic", "off"
        ).run(source, target)
        assert len(result.lsim_table) == 0
        # Structure-only matching still yields a usable result object.
        assert result.treematch_result is not None

    def test_structural_no_context(self, schemas):
        source, target = schemas
        default = MatchPipeline.default().run(source, target)
        adjusted = MatchPipeline.default().with_variant(
            "structural", "no-context"
        ).run(source, target)
        assert default.treematch_result.scaled_pairs > 0
        assert adjusted.treematch_result.scaled_pairs == 0

    def test_default_variant_is_identity(self):
        pipeline = MatchPipeline.default()
        assert pipeline.with_variant("mapping", "default") is pipeline

    def test_unknown_variant(self):
        with pytest.raises(ReproError, match="unknown pipeline stage"):
            MatchPipeline.default().with_variant("mapping", "psychic")

    def test_variant_registry_is_complete(self):
        pipeline = MatchPipeline.default()
        for stage_name, variants in STAGE_VARIANTS.items():
            for variant in variants:
                derived = pipeline.with_variant(stage_name, variant)
                assert stage_name in derived.stage_names()


class TestBaselineAdapters:
    def test_pathname_as_pipeline(self, schemas):
        source, target = schemas
        baseline = PathNameMatcher()
        direct = baseline.match(source, target)
        result = baseline.as_pipeline().run(source, target)
        assert _mapping_signature(result.leaf_mapping) == (
            _mapping_signature(direct)
        )
        assert len(result.nonleaf_mapping) == 0
        assert result.lsim_table is None
        assert result.treematch_result is None
        # CupidResult conveniences still work.
        assert len(result.mapping) == len(direct)
        assert result.one_to_one() is not None
        assert "baseline" in result.timings

    def test_topdown_as_pipeline(self, schemas):
        source, target = schemas
        baseline = TopDownMatcher()
        result = baseline.as_pipeline().run(source, target)
        assert _mapping_signature(result.leaf_mapping) == (
            _mapping_signature(baseline.match(source, target))
        )

    def test_baseline_pipeline_satisfies_matcher_protocol(self):
        assert isinstance(PathNameMatcher().as_pipeline(), Matcher)

    def test_wsim_raises_without_structural_artifacts(self, schemas):
        source, target = schemas
        result = PathNameMatcher().as_pipeline().run(source, target)
        with pytest.raises(ReproError, match="no TreeMatch artifacts"):
            result.wsim("POLines", "Items")
        with pytest.raises(ReproError, match="no lsim table"):
            result.lsim("POLines", "Items")

    def test_hints_on_baseline_pipeline_fail_loudly(self, schemas):
        """A pipeline without a linguistic stage cannot honor
        initial-mapping feedback; dropping it silently would discard
        user corrections."""
        source, target = schemas
        pipeline = PathNameMatcher().as_pipeline()
        with pytest.raises(ReproError, match="cannot honor"):
            pipeline.match(
                source, target,
                initial_mapping=[("POShipTo", "DeliverTo")],
            )

    def test_non_mapping_result_requires_extract(self, schemas):
        source, target = schemas

        class WeirdBaseline:
            def match(self, a, b):
                return {"not": "a mapping"}

        pipeline = baseline_pipeline(WeirdBaseline())
        with pytest.raises(ReproError, match="supply an extract"):
            pipeline.run(source, target)

    def test_extract_callable_adapts_foreign_results(self, schemas):
        source, target = schemas
        baseline = PathNameMatcher()

        class Wrapped:
            """A baseline with its own result type."""

            def match(self, a, b):
                return {"inner": baseline.match(a, b)}

        pipeline = baseline_pipeline(
            Wrapped(), extract=lambda outcome: outcome["inner"]
        )
        result = pipeline.run(source, target)
        assert _mapping_signature(result.leaf_mapping) == (
            _mapping_signature(baseline.match(source, target))
        )


class TestCachedCombinedMapping:
    def test_mapping_property_is_cached(self, schemas):
        source, target = schemas
        result = CupidMatcher().match(source, target)
        first = result.mapping
        assert result.mapping is first  # same object, not rebuilt
        assert len(first) == len(result.leaf_mapping) + len(
            result.nonleaf_mapping
        )
