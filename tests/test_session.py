"""Tests for MatchSession: cached preparation, batch matching, rematch.

The session's contract is *pure speedup*: every cached artifact is a
deterministic function of (schema, thesaurus, config), so session
results must be bit-identical to independent ``CupidMatcher.match``
calls — including under the reference engine and with feedback hints.
"""

from __future__ import annotations

import pytest

from repro import CupidMatcher, MatchSession, PreparedSchema
from repro.config import CupidConfig
from repro.datasets.figure2 import figure2_po, figure2_purchase_order
from repro.datasets.generator import PerturbationConfig, SchemaGenerator
from repro.linguistic.thesaurus import empty_thesaurus
from repro.pipeline import MatchPipeline


def _mapping_signature(mapping):
    return sorted(
        (e.source_path, e.target_path, e.similarity) for e in mapping
    )


def _wsim_signature(result):
    source_paths = {n.node_id: n.path() for n in result.source_tree.nodes()}
    target_paths = {n.node_id: n.path() for n in result.target_tree.nodes()}
    return sorted(
        (source_paths[s], target_paths[t], value)
        for (s, t), value in result.treematch_result.wsim.items()
    )


def _batch_workload(n_targets=4, size=24, seed=11):
    generator = SchemaGenerator(seed=seed)
    source = generator.generate(n_leaves=size, max_depth=3)
    targets = []
    for i in range(n_targets):
        perturber = SchemaGenerator(seed=seed + 50 + i)
        copy, _ = perturber.perturb(
            source, PerturbationConfig(abbreviate=0.3, synonym=0.2)
        )
        targets.append(copy)
    return source, targets


def assert_identical(session_result, matcher_result):
    assert sorted(session_result.lsim_table.items()) == (
        sorted(matcher_result.lsim_table.items())
    )
    assert _wsim_signature(session_result) == _wsim_signature(matcher_result)
    assert _mapping_signature(session_result.leaf_mapping) == (
        _mapping_signature(matcher_result.leaf_mapping)
    )
    assert _mapping_signature(session_result.nonleaf_mapping) == (
        _mapping_signature(matcher_result.nonleaf_mapping)
    )


class TestSessionParity:
    def test_single_match_identical_to_matcher(self):
        source, target = figure2_po(), figure2_purchase_order()
        assert_identical(
            MatchSession().match(source, target),
            CupidMatcher().match(source, target),
        )

    def test_repeat_match_uses_lsim_cache_and_stays_identical(self):
        source, target = figure2_po(), figure2_purchase_order()
        session = MatchSession()
        first = session.match(source, target)
        second = session.match(source, target)
        assert session.cache_info()["lsim_hits"] == 1
        assert_identical(second, CupidMatcher().match(source, target))
        # Fresh result objects each time, not a replay of the first.
        assert second is not first

    def test_match_many_identical_to_independent_calls(self):
        source, targets = _batch_workload()
        session_results = MatchSession().match_many(source, targets)
        for target, session_result in zip(targets, session_results):
            assert_identical(
                session_result, CupidMatcher().match(source, target)
            )

    def test_reference_engine_parity(self):
        source, targets = _batch_workload(n_targets=2)
        config = CupidConfig(engine="reference")
        session = MatchSession(config=config)
        for target, session_result in zip(
            targets, session.match_many(source, targets)
        ):
            assert_identical(
                session_result,
                CupidMatcher(config=config).match(source, target),
            )

    def test_match_with_hints_identical(self):
        source, target = figure2_po(), figure2_purchase_order()
        hints = [("POLines.Item.Line", "Items.Item.ItemNumber")]
        session = MatchSession()
        session.match(source, target)  # populate the pair cache
        hinted = session.match(source, target, initial_mapping=hints)
        assert_identical(
            hinted, CupidMatcher().match(source, target, initial_mapping=hints)
        )

    def test_hints_do_not_pollute_the_pair_cache(self):
        source, target = figure2_po(), figure2_purchase_order()
        hints = [("POLines.Item.Line", "Items.Item.ItemNumber")]
        session = MatchSession()
        session.match(source, target)
        session.match(source, target, initial_mapping=hints)
        clean = session.match(source, target)
        assert_identical(clean, CupidMatcher().match(source, target))


class TestRematch:
    def test_rematch_without_feedback_reproduces_result(self):
        source, target = figure2_po(), figure2_purchase_order()
        session = MatchSession()
        first = session.rematch(session.match(source, target))
        assert_identical(first, CupidMatcher().match(source, target))

    def test_rematch_with_feedback_matches_hinted_run(self):
        source, target = figure2_po(), figure2_purchase_order()
        feedback = [("POLines.Item.Line", "Items.Item.ItemNumber")]
        session = MatchSession()
        first = session.match(source, target)
        rerun = session.rematch(first, feedback=feedback)
        assert_identical(
            rerun,
            CupidMatcher().match(source, target, initial_mapping=feedback),
        )

    def test_rematch_skips_prepared_phases(self):
        source, target = figure2_po(), figure2_purchase_order()
        session = MatchSession()
        first = session.match(source, target)
        session.rematch(first, feedback=[("POShipTo", "DeliverTo")])
        info = session.cache_info()
        assert info["prepare_misses"] == 2     # source + target, once
        assert info["prepare_hits"] == 2       # both reused on rematch
        assert info["lsim_hits"] == 1          # linguistic phase skipped

    def test_rematch_with_feedback_on_blocked_store(self):
        """The feedback loop (a cached FactoredLsimTable copy mutated
        by hints, consumed by the blocked store's dict-lsim plan) must
        stay bit-identical to an independent hinted flat-store run."""
        source, target = figure2_po(), figure2_purchase_order()
        feedback = [("POLines.Item.Line", "Items.Item.ItemNumber")]
        config = CupidConfig(store="blocked", block_size=8)
        session = MatchSession(config=config)
        first = session.match(source, target)
        rerun = session.rematch(first, feedback=feedback)
        assert_identical(
            rerun,
            CupidMatcher().match(source, target, initial_mapping=feedback),
        )
        # And the rematch really ran on the blocked store.
        from repro.structure.blocked import BlockedSimilarityStore

        assert isinstance(
            rerun.treematch_result.sims, BlockedSimilarityStore
        )

    def test_rematch_blocked_generated_workload(self):
        source, targets = _batch_workload(n_targets=2)
        session = MatchSession(config=CupidConfig(store="blocked"))
        results = session.match_many(source, targets)
        feedback = None
        rerun = session.rematch(results[0], feedback=feedback)
        assert_identical(rerun, CupidMatcher().match(source, targets[0]))


class TestSessionCaching:
    def test_prepare_returns_same_artifact(self):
        source, _ = figure2_po(), figure2_purchase_order()
        session = MatchSession()
        assert session.prepare(source) is session.prepare(source)

    def test_prepare_accepts_prepared_schema(self):
        source = figure2_po()
        session = MatchSession()
        prepared = session.pipeline.prepare(source)
        assert session.prepare(prepared) is prepared
        # The raw schema now resolves to the registered artifact.
        assert session.prepare(source) is prepared

    def test_foreign_prepared_schema_does_not_shadow_registered(self):
        """A caller-made PreparedSchema for an already-registered schema
        must not displace (or bypass) the session's retained artifact —
        cache keys are ids, so only retained objects may be used."""
        source = figure2_po()
        session = MatchSession()
        registered = session.prepare(source)
        foreign = session.pipeline.prepare(source)
        assert foreign is not registered
        assert session.prepare(foreign) is registered

    def test_prepared_schema_lazy_and_cached(self):
        source = figure2_po()
        prepared = MatchPipeline.default().prepare(source)
        assert isinstance(prepared, PreparedSchema)
        assert prepared._tree is None  # nothing built yet
        tree = prepared.tree
        assert prepared.tree is tree
        assert prepared.linguistic is prepared.linguistic
        assert prepared.leaf_layout is prepared.leaf_layout

    def test_match_many_prepares_source_once(self):
        source, targets = _batch_workload(n_targets=4)
        session = MatchSession()
        session.match_many(source, targets)
        info = session.cache_info()
        assert info["matches"] == 4
        assert info["prepared_schemas"] == 5   # source + 4 targets
        assert info["prepare_misses"] == 5
        assert info["cached_lsim_pairs"] == 4

    def test_cache_info_counts(self):
        source, target = figure2_po(), figure2_purchase_order()
        session = MatchSession()
        info = session.cache_info()
        assert info["matches"] == 0 and info["prepared_schemas"] == 0
        session.match(source, target)
        session.match(source, target)
        info = session.cache_info()
        assert info["matches"] == 2
        assert info["lsim_misses"] == 1 and info["lsim_hits"] == 1
        # Flat-store sessions report zero tile occupancy.
        assert info["blocked_store_matches"] == 0
        assert info["store_tiles_total"] == 0

    def test_cache_info_tile_occupancy_blocked(self):
        source, targets = _batch_workload(n_targets=3)
        session = MatchSession(
            config=CupidConfig(store="blocked", block_size=8)
        )
        session.match_many(source, targets)
        info = session.cache_info()
        assert info["blocked_store_matches"] == 3
        assert info["store_tiles_total"] > 0
        assert (
            0
            <= info["store_tiles_allocated"]
            <= info["store_tiles_touched"]
            <= info["store_tiles_total"]
        )
        assert info["store_bytes"] > 0

    def test_prepared_schema_cache_info(self):
        source = figure2_po()
        prepared = MatchPipeline.default().prepare(source)
        info = prepared.cache_info()
        assert info == {
            "linguistic_built": False,
            "vocabulary_built": False,
            "tree_built": False,
            "leaf_layout_built": False,
        }
        layout = prepared.leaf_layout
        info = prepared.cache_info()
        assert info["tree_built"] and info["leaf_layout_built"]
        assert info["leaves"] == len(layout.leaves)


class TestSessionConfiguration:
    def test_no_thesaurus_session(self):
        source, target = figure2_po(), figure2_purchase_order()
        session = MatchSession(thesaurus=empty_thesaurus())
        matcher = CupidMatcher(thesaurus=empty_thesaurus())
        assert_identical(
            session.match(source, target), matcher.match(source, target)
        )

    def test_custom_pipeline_session(self):
        source, target = figure2_po(), figure2_purchase_order()
        pipeline = MatchPipeline.default().with_variant(
            "mapping", "one-to-one"
        )
        session = MatchSession(pipeline=pipeline)
        result = session.match(source, target)
        assert result.leaf_mapping.is_one_to_one()
        # Second match reuses the cached lsim under the custom stages.
        again = session.match(source, target)
        assert _mapping_signature(again.leaf_mapping) == (
            _mapping_signature(result.leaf_mapping)
        )
        assert session.cache_info()["lsim_hits"] == 1


class TestSessionLru:
    """config.max_prepared_schemas bounds the session's cache tiers.

    Eviction is least-recently-matched first and must be a pure memory
    policy: results stay bit-identical to an unbounded session, only
    hit rates (and the eviction counters) change.
    """

    def test_evicts_least_recently_matched(self):
        source, targets = _batch_workload(n_targets=4)
        session = MatchSession(
            config=CupidConfig().replace(max_prepared_schemas=2)
        )
        session.match_many(source, targets)
        info = session.cache_info()
        assert info["prepared_schemas"] <= 2
        # source + 4 targets passed through a 2-slot cache.
        assert info["prepared_evictions"] >= 3
        # Evicted prepared schemas take their cached lsim pairs along.
        assert info["cached_lsim_pairs"] <= 2

    def test_bounded_results_identical_to_unbounded(self):
        source, targets = _batch_workload(n_targets=4)
        bounded = MatchSession(
            config=CupidConfig().replace(max_prepared_schemas=1)
        )
        unbounded = MatchSession()
        for b, u in zip(
            bounded.match_many(source, targets),
            unbounded.match_many(source, targets),
        ):
            assert_identical(b, u)
        assert bounded.cache_info()["prepared_evictions"] > 0
        assert unbounded.cache_info()["prepared_evictions"] == 0

    def test_recently_matched_survive(self):
        source, targets = _batch_workload(n_targets=3)
        session = MatchSession(
            config=CupidConfig().replace(max_prepared_schemas=2)
        )
        session.match(source, targets[0])
        before = session.cache_info()["prepare_misses"]
        # source was refreshed by the match; matching it again must
        # hit the cache even though targets rotated through.
        session.match(source, targets[1])
        session.match(source, targets[2])
        assert session.cache_info()["prepare_misses"] == before + 2

    def test_rematch_after_eviction_still_correct(self):
        source, targets = _batch_workload(n_targets=3)
        session = MatchSession(
            config=CupidConfig().replace(max_prepared_schemas=1)
        )
        results = session.match_many(source, targets)
        again = session.rematch(results[0])
        assert_identical(again, results[0])
