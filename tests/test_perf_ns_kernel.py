"""Perf-regression smoke for the batched distinct-name ns kernel.

The recorded floor lives beside the benchmark results
(``benchmarks/results/BENCH_ns_kernel_floor.json``): the linguistic
phase on the sparse independent-pair workload must finish under its
``floor_ms`` with batching on. Like ``test_perf_repetition``, the
ceiling is generous (~20x the recorded measurement) — it catches the
batch layer silently degenerating (routing every pair scalar, or the
cross-product vectorization collapsing into per-pair Python), not
small drifts. Real numbers live in ``benchmarks/bench_ns_kernel.py``.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro import CupidMatcher
from repro.config import CupidConfig
from repro.datasets.generator import SchemaGenerator
from repro.linguistic.lexicon import builtin_thesaurus
from repro.linguistic.matcher import LinguisticMatcher

pytestmark = pytest.mark.perf

_FLOOR_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir,
    "benchmarks", "results", "BENCH_ns_kernel_floor.json",
)


@pytest.fixture(scope="module")
def floor_record():
    with open(_FLOOR_PATH) as handle:
        return json.load(handle)


def _workload(spec):
    source = SchemaGenerator(seed=spec["seed_source"]).generate(
        name="mediated",
        n_leaves=spec["n_leaves"],
        max_depth=spec["max_depth"],
    )
    target = SchemaGenerator(seed=spec["seed_target"]).generate(
        name="candidate",
        n_leaves=spec["n_leaves"],
        max_depth=spec["max_depth"],
    )
    return source, target


def test_batched_ns_under_floor(floor_record):
    source, target = _workload(floor_record["workload"])
    config = CupidConfig(thlow=0.0)
    assert config.linguistic_batch_ns  # the floor guards the default

    best = None
    for _ in range(2):
        matcher = LinguisticMatcher(builtin_thesaurus(), config)
        start = time.perf_counter()
        matcher.compute(source, target)
        elapsed = (time.perf_counter() - start) * 1000.0
        if best is None or elapsed < best:
            best = elapsed

    floor_ms = floor_record["floor_ms"]
    assert best < floor_ms, (
        f"batched linguistic phase took {best:.1f} ms (recorded floor "
        f"{floor_ms} ms, last measured "
        f"{floor_record['measured_batched_ms']} ms) — the batch layer "
        "has regressed badly"
    )


def test_workload_engages_batched_ns(floor_record):
    """The floor only means something if the batch path is the one
    running: the kernel must report batched pairs on this workload."""
    source, target = _workload(floor_record["workload"])
    matcher = CupidMatcher(config=CupidConfig(thlow=0.0))
    result = matcher.match(source, target)
    stats = matcher.run_stats(result)
    assert stats["kernel_ns_batched_pairs"] > 0
