"""Cross-data-model integration tests.

The paper's core positioning: Match "must be generic, meaning that it
can apply to many different data models". These tests match schemas
expressed in *different* source models — relational DDL against the
XML dialect, a DTD against an OO class model — through the one generic
pipeline.
"""

import pytest

from repro import CupidMatcher
from repro.io.dtd import parse_dtd
from repro.io.oo_model import parse_oo_model
from repro.io.sql_ddl import parse_sql_ddl
from repro.io.xml_schema import parse_xml_schema

_SQL = """
CREATE TABLE PurchaseOrder (
  OrderNumber int PRIMARY KEY,
  OrderDate datetime,
  CustomerName varchar(40)
);
CREATE TABLE OrderLine (
  LineNumber int PRIMARY KEY,
  OrderNumber int REFERENCES PurchaseOrder(OrderNumber),
  Quantity int,
  UnitPrice money
);
"""

_XML = """
<schema name="POMessage">
  <element name="Order">
    <attribute name="OrderNumber" type="integer"/>
    <attribute name="OrderDate" type="date"/>
    <attribute name="CustomerName" type="string"/>
    <element name="Line">
      <attribute name="LineNumber" type="integer"/>
      <attribute name="Quantity" type="integer"/>
      <attribute name="UnitPrice" type="money"/>
    </element>
  </element>
</schema>
"""


class TestRelationalVsXml:
    def test_sql_to_xml_match(self):
        source = parse_sql_ddl(_SQL, "DB")
        target = parse_xml_schema(_XML)
        result = CupidMatcher().match(source, target)
        pairs = result.leaf_mapping.name_pairs()
        for name in ("OrderNumber", "OrderDate", "CustomerName",
                     "Quantity", "UnitPrice", "LineNumber"):
            assert any(p == (name, name) for p in pairs), name

    def test_tables_map_to_elements(self):
        source = parse_sql_ddl(_SQL, "DB")
        target = parse_xml_schema(_XML)
        result = CupidMatcher().match(source, target)
        nonleaf = result.nonleaf_mapping.name_pairs()
        assert ("PurchaseOrder", "Order") in nonleaf
        assert ("OrderLine", "Line") in nonleaf

    def test_join_view_crosses_models(self):
        """The SQL side's FK join view maps against the XML Order
        element that nests the same content."""
        source = parse_sql_ddl(_SQL, "DB")
        target = parse_xml_schema(_XML)
        result = CupidMatcher().match(source, target)
        join_nodes = [
            n for n in result.source_tree.nodes() if n.is_join_view
        ]
        assert join_nodes
        order_node = result.target_tree.node_for_path("Order")
        wsim = result.treematch_result.wsim_of(join_nodes[0], order_node)
        assert wsim > 0.0


class TestDtdVsOo:
    def test_dtd_to_class_model(self):
        dtd = """
        <!ELEMENT customer (#PCDATA)>
        <!ATTLIST customer
          cust_number CDATA #REQUIRED
          name CDATA #REQUIRED
          address CDATA #IMPLIED>
        """
        oo = """
        class Customer (CustomerNumber: integer (key),
                        Name: string,
                        Address: string)
        """
        source = parse_dtd(dtd, "DTD")
        target = parse_oo_model(oo, "OO")
        result = CupidMatcher().match(source, target)
        pairs = result.leaf_mapping.name_pairs()
        assert ("name", "Name") in pairs
        assert ("address", "Address") in pairs
        # "cust_number" tokenizes on the underscore and "cust" expands
        # via the bundled lexicon; a fully concatenated lowercase name
        # ("custnumber") would have no split point — the same
        # tokenizer limitation the paper's prototype has.
        assert ("cust_number", "CustomerNumber") in pairs
