"""Property-based tests for the linguistic stack (hypothesis)."""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CupidConfig
from repro.linguistic.lexicon import builtin_thesaurus
from repro.linguistic.name_similarity import (
    element_name_similarity,
    substring_similarity,
    token_set_similarity,
    token_similarity,
)
from repro.linguistic.normalizer import Normalizer
from repro.linguistic.tokenizer import tokenize
from repro.linguistic.tokens import Token

_THESAURUS = builtin_thesaurus()
_NORMALIZER = Normalizer(_THESAURUS)
_CONFIG = CupidConfig()

#: Identifier-ish element names: letters, digits, underscores, dashes.
names = st.text(
    alphabet=string.ascii_letters + string.digits + "_-",
    min_size=1,
    max_size=24,
).filter(lambda s: any(c.isalnum() for c in s))

words = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=12)


class TestTokenizerProperties:
    @given(names)
    def test_tokens_are_lowercase_and_nonempty(self, name):
        for token in tokenize(name):
            assert token
            assert token == token.lower()

    @given(names)
    def test_tokens_cover_alnum_content(self, name):
        """Every alphanumeric character of the name survives somewhere."""
        joined = "".join(tokenize(name))
        for ch in name.lower():
            if ch.isalnum():
                assert ch in joined

    @given(names)
    def test_tokenize_idempotent_on_tokens(self, name):
        for token in tokenize(name):
            if token.isalpha():
                assert tokenize(token) == [token]


class TestNormalizerProperties:
    @given(names)
    def test_normalization_total(self, name):
        normalized = _NORMALIZER.normalize(name)
        assert normalized.raw == name

    @given(names)
    def test_normalization_deterministic(self, name):
        assert _NORMALIZER.normalize(name) is _NORMALIZER.normalize(name)


class TestSimilarityProperties:
    @given(words, words)
    def test_substring_similarity_bounded_and_symmetric(self, a, b):
        score = substring_similarity(a, b)
        assert 0.0 <= score <= 0.8
        assert score == pytest.approx(substring_similarity(b, a))

    @given(words)
    def test_substring_identity(self, word):
        if len(word) >= 3:
            assert substring_similarity(word, word) == pytest.approx(0.8)

    @given(words, words)
    def test_token_similarity_bounded(self, a, b):
        score = token_similarity(Token(a), Token(b), _THESAURUS, _CONFIG)
        assert 0.0 <= score <= 1.0

    @given(words)
    def test_token_similarity_identity(self, word):
        assert token_similarity(Token(word), Token(word), _THESAURUS, _CONFIG) == 1.0

    @given(
        st.lists(words, min_size=1, max_size=5),
        st.lists(words, min_size=1, max_size=5),
    )
    def test_token_set_similarity_bounded_and_symmetric(self, t1, t2):
        tokens1 = [Token(w) for w in t1]
        tokens2 = [Token(w) for w in t2]
        forward = token_set_similarity(tokens1, tokens2, _THESAURUS, _CONFIG)
        backward = token_set_similarity(tokens2, tokens1, _THESAURUS, _CONFIG)
        assert 0.0 <= forward <= 1.0
        assert forward == pytest.approx(backward)

    @given(st.lists(words, min_size=1, max_size=5))
    def test_token_set_identity_is_one(self, word_list):
        tokens = [Token(w) for w in word_list]
        assert token_set_similarity(tokens, tokens, _THESAURUS, _CONFIG) == (
            pytest.approx(1.0)
        )

    @given(names, names)
    @settings(max_examples=50)
    def test_element_name_similarity_bounded_and_symmetric(self, n1, n2):
        a = _NORMALIZER.normalize(n1)
        b = _NORMALIZER.normalize(n2)
        forward = element_name_similarity(a, b, _THESAURUS, _CONFIG)
        backward = element_name_similarity(b, a, _THESAURUS, _CONFIG)
        assert 0.0 <= forward <= 1.0
        assert forward == pytest.approx(backward)

    @given(names)
    @settings(max_examples=50)
    def test_element_name_self_similarity(self, name):
        normalized = _NORMALIZER.normalize(name)
        score = element_name_similarity(
            normalized, normalized, _THESAURUS, _CONFIG
        )
        if normalized.comparable_tokens():
            assert score == pytest.approx(1.0)
        else:
            assert score == 0.0
