"""Tests for the MOMIS/ARTEMIS and path-name baselines."""

import pytest

from repro.baselines.momis import MomisMatcher
from repro.baselines.pathname import PathNameMatcher
from repro.io.oo_model import parse_oo_model
from repro.linguistic.lexicon import builtin_thesaurus
from repro.model.builder import schema_from_tree

_CUSTOMER_1 = """
class Customer (CustomerNumber: integer (key), Name: string,
                Address: string)
"""


class TestMomis:
    def test_identical_classes_cluster(self):
        s1 = parse_oo_model(_CUSTOMER_1, "S1")
        s2 = parse_oo_model(_CUSTOMER_1, "S2")
        result = MomisMatcher().match(s1, s2)
        assert result.clustered_together("Customer", "Customer")
        assert result.attributes_fused("Customer.Name", "Customer.Name")

    def test_renamed_attributes_need_annotations(self):
        """Table 2 footnote b: the user must add the relationships."""
        s1 = parse_oo_model(_CUSTOMER_1, "S1")
        s2 = parse_oo_model(
            """
            class Customer (CustomerNumber: integer (key),
                            CustomerName: string, StreetAddress: string)
            """,
            "S2",
        )
        plain = MomisMatcher().match(s1, s2)
        assert not plain.attributes_fused("Customer.Name", "Customer.CustomerName")

        annotated = MomisMatcher(
            sense_annotations=[
                ("Name", "CustomerName", 0.9),
                ("Address", "StreetAddress", 0.9),
            ]
        ).match(s1, s2)
        assert annotated.attributes_fused(
            "Customer.Name", "Customer.CustomerName"
        )

    def test_renamed_class_needs_hypernym_annotation(self):
        s1 = parse_oo_model(_CUSTOMER_1, "S1")
        s2 = parse_oo_model(
            """
            class Person (CustomerNumber: integer (key), Name: string,
                          Address: string)
            """,
            "S2",
        )
        annotated = MomisMatcher(
            sense_annotations=[("Customer", "Person", 0.8)]
        ).match(s1, s2)
        assert annotated.clustered_together("Customer", "Person")

    def test_nesting_breaks_subclass_clusters(self):
        """Canonical example 5: 'MOMIS clusters the two Customer classes
        together, but not the two other classes.'"""
        nested = parse_oo_model(
            """
            class Customer (SSN: integer (key), Telephone: string,
                            Name: Name, Address: Address)
            class Name (FirstName: string, LastName: string)
            class Address (Street: string, City: string)
            """,
            "S1",
        )
        flat = parse_oo_model(
            """
            class Customer (SSN: integer (key), Telephone: string,
                            FirstName: string, LastName: string,
                            Street: string, City: string)
            """,
            "S2",
        )
        result = MomisMatcher().match(nested, flat)
        assert result.clustered_together("Customer", "Customer")
        assert not result.attributes_fused(
            "Name.FirstName", "Customer.FirstName"
        )

    def test_shared_types_stay_separate(self):
        """Canonical example 6: no context-dependent matching."""
        s1 = parse_oo_model(
            """
            class PurchaseOrder (OrderNumber: integer,
                                 ShippingAddress: Address,
                                 BillingAddress: Address)
            class Address (Street: string, City: string)
            """,
            "S1",
        )
        s2 = parse_oo_model(
            """
            class PurchaseOrder (OrderNumber: integer,
                                 ShippingAddress: ShipTo,
                                 BillingAddress: BillTo)
            class ShipTo (Street: string, City: string)
            class BillTo (Street: string, City: string)
            """,
            "S2",
        )
        result = MomisMatcher().match(s1, s2)
        assert result.clustered_together("PurchaseOrder", "PurchaseOrder")
        assert not result.clustered_together("Address", "ShipTo")
        assert not result.clustered_together("Address", "BillTo")

    def test_annotation_validation(self):
        with pytest.raises(ValueError):
            MomisMatcher(sense_annotations=[("a", "b", 2.0)])


class TestPathNameMatcher:
    def test_identical_paths_match(self):
        spec = {"Order": {"Qty": "integer", "Price": "money"}}
        matcher = PathNameMatcher()
        mapping = matcher.match(
            schema_from_tree("S", spec), schema_from_tree("T", spec)
        )
        assert ("S.Order.Qty", "T.Order.Qty") in mapping.path_pairs()

    def test_cannot_distinguish_contexts(self):
        """Section 9.3.3: without structure, multi-context attributes
        are indistinguishable — path tokens differ only by container."""
        source = schema_from_tree(
            "S",
            {
                "BillTo": {"City": "string"},
                "ShipTo": {"City": "string"},
            },
        )
        target = schema_from_tree(
            "T",
            {
                "InvoiceTo": {"City": "string"},
                "DeliverTo": {"City": "string"},
            },
        )
        mapping = PathNameMatcher(
            thesaurus=builtin_thesaurus()
        ).match(source, target)
        # It still produces *some* mapping for each City, but quality
        # depends purely on the synonym entries in path tokens.
        assert len(mapping) == 2

    def test_threshold_filters(self):
        source = schema_from_tree("S", {"A": {"xyzzy": "binary"}})
        target = schema_from_tree("T", {"B": {"quantity": "integer"}})
        mapping = PathNameMatcher(threshold=0.9).match(source, target)
        assert len(mapping) == 0

    def test_scores_bounded(self, po_schema, purchase_order_schema):
        mapping = PathNameMatcher().match(po_schema, purchase_order_schema)
        for element in mapping:
            assert 0.0 <= element.similarity <= 1.0
