"""Tests for description-based matching (Section 10 future work)."""

import pytest

from repro import CupidConfig, CupidMatcher
from repro.exceptions import ConfigError
from repro.linguistic.thesaurus import empty_thesaurus
from repro.model.builder import SchemaBuilder


def _schemas_with_descriptions():
    """Cryptic names, informative data-dictionary annotations."""
    source = SchemaBuilder("Legacy")
    rec = source.add_child(source.root, "REC01")
    source.add_leaf(
        rec, "F1", "varchar",
        description="customer full name for billing",
    )
    source.add_leaf(
        rec, "F2", "varchar",
        description="street address of the customer",
    )
    source.add_leaf(rec, "F3", "integer")

    target = SchemaBuilder("Modern")
    customer = target.add_child(target.root, "Customer")
    target.add_leaf(
        customer, "Name", "varchar",
        description="the customer name used on invoices and bills",
    )
    target.add_leaf(
        customer, "Street", "varchar",
        description="customer street address",
    )
    target.add_leaf(customer, "Age", "integer")
    return source.schema, target.schema


class TestDescriptionMatching:
    def test_disabled_by_default(self):
        source, target = _schemas_with_descriptions()
        result = CupidMatcher(thesaurus=empty_thesaurus()).match(source, target)
        pairs = result.leaf_mapping.path_pairs()
        assert ("Legacy.REC01.F1", "Modern.Customer.Name") not in pairs

    def test_descriptions_rescue_cryptic_names(self):
        source, target = _schemas_with_descriptions()
        matcher = CupidMatcher(
            thesaurus=empty_thesaurus(),
            config=CupidConfig(use_descriptions=True),
        )
        result = matcher.match(source, target)
        pairs = result.leaf_mapping.path_pairs()
        assert ("Legacy.REC01.F1", "Modern.Customer.Name") in pairs
        assert ("Legacy.REC01.F2", "Modern.Customer.Street") in pairs

    def test_undescribed_elements_unaffected(self):
        source, target = _schemas_with_descriptions()
        matcher = CupidMatcher(
            thesaurus=empty_thesaurus(),
            config=CupidConfig(use_descriptions=True),
        )
        result = matcher.match(source, target)
        f3 = source.element_named("F3")
        age = target.element_named("Age")
        # No descriptions on either: lsim comes from names only (none).
        assert result.lsim_table.get(f3, age) == 0.0

    def test_description_weight_caps_contribution(self):
        source, target = _schemas_with_descriptions()
        config = CupidConfig(use_descriptions=True, description_weight=0.5)
        matcher = CupidMatcher(thesaurus=empty_thesaurus(), config=config)
        result = matcher.match(source, target)
        f1 = source.element_named("F1")
        name = target.element_named("Name")
        assert result.lsim_table.get(f1, name) <= 0.5

    def test_invalid_weight_rejected(self):
        with pytest.raises(ConfigError):
            CupidConfig(description_weight=1.5).validate()

    def test_thesaurus_used_inside_descriptions(self, thesaurus):
        """Synonyms apply to description words too (invoice ≈ bill)."""
        source, target = _schemas_with_descriptions()
        matcher = CupidMatcher(
            thesaurus=thesaurus,
            config=CupidConfig(use_descriptions=True),
        )
        result = matcher.match(source, target)
        f1 = source.element_named("F1")
        name = target.element_named("Name")
        assert result.lsim_table.get(f1, name) > 0.5
