"""CLI tests for ``match-many``, ``--pipeline``, and the JSON
timings/stats payload."""

from __future__ import annotations

import json

import pytest

from repro.cli import main, parse_pipeline_spec
from repro.exceptions import ReproError

_MEDIATED = """
CREATE TABLE Orders (
  OrderID int PRIMARY KEY,
  Quantity int,
  UnitPrice money,
  City varchar(30)
);
"""

_SOURCE_A = """
CREATE TABLE Purchases (
  PurchaseID int PRIMARY KEY,
  Qty int,
  UnitCost money,
  Town varchar(30)
);
"""

_SOURCE_B = """
CREATE TABLE Sales (
  SaleID int PRIMARY KEY,
  Quantity int,
  Price money,
  City varchar(30)
);
"""


@pytest.fixture
def schema_files(tmp_path):
    mediated = tmp_path / "mediated.sql"
    mediated.write_text(_MEDIATED)
    a = tmp_path / "a.sql"
    a.write_text(_SOURCE_A)
    b = tmp_path / "b.sql"
    b.write_text(_SOURCE_B)
    return str(mediated), str(a), str(b)


class TestParsePipelineSpec:
    def test_single_override(self):
        assert parse_pipeline_spec("mapping=one-to-one") == [
            ("mapping", "one-to-one")
        ]

    def test_multiple_overrides(self):
        assert parse_pipeline_spec(
            "linguistic=off, mapping=hungarian"
        ) == [("linguistic", "off"), ("mapping", "hungarian")]

    def test_malformed_entry(self):
        with pytest.raises(ReproError, match="bad --pipeline entry"):
            parse_pipeline_spec("mapping")


class TestMatchJsonPayload:
    def test_json_includes_timings_and_stats(self, schema_files, capsys):
        mediated, a, _ = schema_files
        assert main(["match", mediated, a, "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["elements"]
        for phase in ("linguistic", "trees", "treematch", "mapping"):
            assert data["timings_ms"][phase] >= 0.0
        stats = data["stats"]
        assert stats["engine"] == "dense"
        assert stats["compared_pairs"] > 0
        assert stats["leaf_mappings"] == len(data["elements"])

    def test_pipeline_override_one_to_one(self, schema_files, capsys):
        mediated, a, _ = schema_files
        assert main(
            ["match", mediated, a, "--format", "json",
             "--pipeline", "mapping=one-to-one"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        targets = [tuple(e["target_path"]) for e in data["elements"]]
        sources = [tuple(e["source_path"]) for e in data["elements"]]
        assert len(targets) == len(set(targets))
        assert len(sources) == len(set(sources))

    def test_pipeline_override_linguistic_off(self, schema_files, capsys):
        mediated, a, _ = schema_files
        assert main(
            ["match", mediated, a, "--format", "json",
             "--pipeline", "linguistic=off"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["stats"]["lsim_entries"] == 0

    def test_bad_pipeline_spec_is_cli_error(self, schema_files, capsys):
        mediated, a, _ = schema_files
        assert main(
            ["match", mediated, a, "--pipeline", "nonsense=foo"]
        ) == 1
        assert "error:" in capsys.readouterr().err


class TestMatchMany:
    def test_text_output_has_one_section_per_target(
        self, schema_files, capsys
    ):
        mediated, a, b = schema_files
        assert main(["match-many", mediated, a, b]) == 0
        out = capsys.readouterr().out
        assert "mediated -> a:" in out
        assert "mediated -> b:" in out

    def test_json_output_shape(self, schema_files, capsys):
        mediated, a, b = schema_files
        assert main(
            ["match-many", mediated, a, b, "--format", "json"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["source_schema"] == "mediated"
        assert len(data["matches"]) == 2
        for match in data["matches"]:
            assert match["source_schema"] == "mediated"
            assert match["elements"]
            assert "timings_ms" in match and "stats" in match
        session = data["session"]
        assert session["matches"] == 2
        assert session["prepared_schemas"] == 3

    def test_memo_counters_reported_once_at_session_level(
        self, schema_files, capsys
    ):
        """The linguistic memo is session-cumulative; per-match stats
        must not misattribute its totals to individual matches."""
        mediated, a, b = schema_files
        assert main(
            ["match-many", mediated, a, b, "--format", "json"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        for match in data["matches"]:
            assert "token_sim_hits" not in match["stats"]
        assert data["session"]["token_sim_hits"] >= 0

    def test_json_matches_agree_with_single_match(
        self, schema_files, capsys
    ):
        mediated, a, b = schema_files
        assert main(
            ["match-many", mediated, a, b, "--format", "json"]
        ) == 0
        batch = json.loads(capsys.readouterr().out)
        assert main(["match", mediated, a, "--format", "json"]) == 0
        single = json.loads(capsys.readouterr().out)
        assert batch["matches"][0]["elements"] == single["elements"]

    def test_stats_flag_reports_session_cache(self, schema_files, capsys):
        mediated, a, b = schema_files
        assert main(["match-many", mediated, a, b, "--stats"]) == 0
        err = capsys.readouterr().err
        assert "session cache" in err
        assert "prepared_schemas: 3" in err
        assert "run stats (mediated -> a)" in err

    def test_min_similarity_and_one_to_one(self, schema_files, capsys):
        mediated, a, b = schema_files
        assert main(
            ["match-many", mediated, a, b, "--format", "json",
             "--one-to-one", "--min-similarity", "0.5"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        for match in data["matches"]:
            for element in match["elements"]:
                assert element["similarity"] >= 0.5

    def test_engine_choice(self, schema_files, capsys):
        mediated, a, b = schema_files
        assert main(
            ["match-many", mediated, a, b, "--engine", "reference",
             "--format", "json"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["matches"][0]["stats"]["engine"] == "reference"

    def test_blocked_store_json(self, schema_files, capsys):
        """--store blocked: identical elements, plus the tile-occupancy
        fields in both per-match stats and the session block."""
        mediated, a, b = schema_files
        assert main(
            ["match-many", mediated, a, b, "--format", "json"]
        ) == 0
        flat = json.loads(capsys.readouterr().out)
        assert main(
            ["match-many", mediated, a, b, "--format", "json",
             "--store", "blocked", "--block-size", "8"]
        ) == 0
        blocked = json.loads(capsys.readouterr().out)
        for flat_match, blocked_match in zip(
            flat["matches"], blocked["matches"]
        ):
            assert blocked_match["elements"] == flat_match["elements"]
        for match in blocked["matches"]:
            stats = match["stats"]
            assert stats["store"] == "blocked"
            assert stats["block_size"] == 8
            assert stats["tiles_allocated"] <= stats["tiles_touched"]
            assert stats["tiles_touched"] <= stats["tiles_total"]
        session = blocked["session"]
        assert session["blocked_store_matches"] == 2
        assert session["store_tiles_total"] > 0

    def test_blocked_store_stats_flag(self, schema_files, capsys):
        mediated, a, b = schema_files
        assert main(
            ["match-many", mediated, a, b, "--store", "blocked", "--stats"]
        ) == 0
        err = capsys.readouterr().err
        assert "store_tiles_allocated:" in err
        assert "tiles_touched:" in err

    def test_bad_block_size_is_cli_error(self, schema_files, capsys):
        mediated, a, _ = schema_files
        assert main(
            ["match-many", mediated, a, "--store", "blocked",
             "--block-size", "-3"]
        ) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_target_is_error(self, schema_files, capsys):
        mediated, a, _ = schema_files
        assert main(["match-many", mediated, a, "/nope/c.sql"]) == 1
        assert "error:" in capsys.readouterr().err
