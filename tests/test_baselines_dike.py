"""Tests for the DIKE baseline matcher."""

import pytest

from repro.baselines.dike import DikeMatcher, LSPD
from repro.io.er_model import ERModel
from repro.model.datatypes import DataType


def _customer_model(name="M1", class_name="Customer", attrs=None):
    model = ERModel(name)
    entity = model.add_entity(class_name)
    for attr_name, data_type, key in attrs or [
        ("CustomerNumber", DataType.INTEGER, True),
        ("Name", DataType.STRING, False),
        ("Address", DataType.STRING, False),
    ]:
        entity.add_attribute(attr_name, data_type, key)
    return model


class TestLSPD:
    def test_symmetric_case_insensitive(self):
        lspd = LSPD([("Name", "CustomerName", 0.9)])
        assert lspd.lookup("customername", "NAME") == 0.9

    def test_missing_is_none(self):
        assert LSPD().lookup("a", "b") is None

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            LSPD([("a", "b", 2.0)])

    def test_len_counts_pairs_once(self):
        assert len(LSPD([("a", "b", 0.5), ("c", "d", 0.6)])) == 2


class TestDikeMatching:
    def test_identical_models_merge(self):
        result = DikeMatcher().match(_customer_model("M1"), _customer_model("M2"))
        assert result.entity_merged("Customer", "Customer")
        assert result.attribute_merged("customer.name", "customer.name")

    def test_renamed_attributes_need_lspd(self):
        """'LSPD entries ... are needed for DIKE to perform the
        integration correctly' (canonical example 3)."""
        renamed = _customer_model(
            "M2",
            attrs=[
                ("CustomerNumber", DataType.INTEGER, True),
                ("CustomerName", DataType.STRING, False),
                ("StreetAddress", DataType.STRING, False),
            ],
        )
        without = DikeMatcher().match(_customer_model(), renamed)
        assert not without.attribute_merged(
            "customer.name", "customer.customername"
        )

        lspd = LSPD([
            ("Name", "CustomerName", 0.9),
            ("Address", "StreetAddress", 0.9),
        ])
        with_lspd = DikeMatcher(lspd=lspd).match(_customer_model(), renamed)
        assert with_lspd.attribute_merged(
            "customer.name", "customer.customername"
        )

    def test_renamed_entity_merges_by_vicinity(self):
        """'DIKE merges the entities together even without an LSPD
        entry' when attributes coincide (canonical example 4)."""
        person = _customer_model("M2", class_name="Person")
        result = DikeMatcher().match(_customer_model(), person)
        assert result.entity_merged("Customer", "Person")

    def test_unrelated_entities_do_not_merge(self):
        other = ERModel("M2")
        entity = other.add_entity("Shipment")
        entity.add_attribute("TrackingCode", DataType.STRING)
        entity.add_attribute("Weight", DataType.FLOAT)
        result = DikeMatcher().match(_customer_model(), other)
        assert not result.entity_merged("Customer", "Shipment")

    def test_similarities_recorded(self):
        result = DikeMatcher().match(_customer_model("M1"), _customer_model("M2"))
        assert result.similarities["customer", "customer"] > 0.9

    def test_shared_type_creates_ambiguous_group(self):
        """Canonical example 6: Address merges with both ShipTo and
        BillTo — the merge group lumps all three together."""
        m1 = ERModel("M1")
        po1 = m1.add_entity("PurchaseOrder")
        po1.add_attribute("OrderNumber", DataType.INTEGER, True)
        address = m1.add_entity("Address")
        for attr in ("Name", "Street", "City", "Zip", "Telephone"):
            address.add_attribute(attr, DataType.STRING)
        m1.add_relationship("ShippingAddress", ["PurchaseOrder", "Address"])
        m1.add_relationship("BillingAddress", ["PurchaseOrder", "Address"])

        m2 = ERModel("M2")
        po2 = m2.add_entity("PurchaseOrder")
        po2.add_attribute("OrderNumber", DataType.INTEGER, True)
        for entity_name, rel in (("ShipTo", "ShippingAddress"),
                                 ("BillTo", "BillingAddress")):
            entity = m2.add_entity(entity_name)
            for attr in ("Name", "Street", "City", "Zip", "Telephone"):
                entity.add_attribute(attr, DataType.STRING)
            m2.add_relationship(rel, ["PurchaseOrder", entity_name])

        result = DikeMatcher().match(m1, m2)
        assert result.entity_merged("Address", "ShipTo")
        assert result.entity_merged("Address", "BillTo")
        # One source entity -> two targets: context is lost.
        targets = {
            n2 for (n1, n2) in result.entity_pairs if n1 == "address"
        }
        assert len(targets) >= 2

    def test_invalid_decay_rejected(self):
        with pytest.raises(ValueError):
            DikeMatcher(decay=1.0)
