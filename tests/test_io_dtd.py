"""Tests for the mini DTD importer."""

import pytest

from repro.exceptions import XmlSchemaParseError
from repro.io.dtd import parse_dtd
from repro.model.datatypes import DataType
from repro.model.element import ElementKind
from repro.model.validation import validate_schema
from repro.tree.construction import construct_schema_tree
from repro.tree.refint import augment_with_join_views

_PO_DTD = """
<!ELEMENT po (header, shipto, lines)>
<!ELEMENT header (#PCDATA)>
<!ATTLIST header
  ponumber CDATA #REQUIRED
  podate CDATA #IMPLIED>
<!ELEMENT shipto (#PCDATA)>
<!ATTLIST shipto
  street CDATA #REQUIRED
  city CDATA #REQUIRED>
<!ELEMENT lines (item*)>
<!ELEMENT item (#PCDATA)>
<!ATTLIST item
  id ID #REQUIRED
  qty CDATA #REQUIRED
  ref IDREF #IMPLIED>
"""


class TestElements:
    def test_root_detection(self):
        schema = parse_dtd(_PO_DTD, "PO")
        top = schema.contained_children(schema.root)
        assert [e.name for e in top] == ["po"]

    def test_containment(self):
        schema = parse_dtd(_PO_DTD, "PO")
        po = schema.element_named("po")
        assert {c.name for c in schema.contained_children(po)} == {
            "header", "shipto", "lines",
        }

    def test_attributes_typed_and_optional(self):
        schema = parse_dtd(_PO_DTD, "PO")
        ponumber = schema.element_named("ponumber")
        assert ponumber.data_type is DataType.STRING
        assert not ponumber.optional
        assert schema.element_named("podate").optional

    def test_star_cardinality_is_optional(self):
        schema = parse_dtd(_PO_DTD, "PO")
        assert schema.element_named("item").optional

    def test_pcdata_only_element_is_atomic(self):
        dtd = "<!ELEMENT note (#PCDATA)>"
        schema = parse_dtd(dtd, "S")
        assert schema.element_named("note").data_type is DataType.STRING

    def test_enumerated_attribute(self):
        dtd = """
        <!ELEMENT order (#PCDATA)>
        <!ATTLIST order status (open|closed) "open">
        """
        schema = parse_dtd(dtd, "S")
        assert schema.element_named("status").data_type is DataType.ENUM

    def test_validates(self):
        assert validate_schema(parse_dtd(_PO_DTD, "PO")) == []


class TestIdIdref:
    def test_id_becomes_key(self):
        schema = parse_dtd(_PO_DTD, "PO")
        identifier = schema.element_named("id")
        assert identifier.is_key
        keys = [e for e in schema.elements if e.kind is ElementKind.KEY]
        assert len(keys) == 1
        assert schema.aggregated_members(keys[0]) == [identifier]

    def test_idref_becomes_refint(self):
        """Figure 5: ID/IDREF pairs are DTD referential constraints."""
        schema = parse_dtd(_PO_DTD, "PO")
        refints = schema.refint_elements()
        assert len(refints) == 1
        sources = schema.aggregated_members(refints[0])
        assert [s.name for s in sources] == ["ref"]
        targets = schema.reference_targets(refints[0])
        assert len(targets) == 1
        assert targets[0].kind is ElementKind.KEY

    def test_idref_references_all_ids(self):
        """'A single IDREF attribute [may] reference multiple IDs'."""
        dtd = """
        <!ELEMENT doc (a, b)>
        <!ELEMENT a (#PCDATA)>
        <!ATTLIST a aid ID #REQUIRED>
        <!ELEMENT b (#PCDATA)>
        <!ATTLIST b bid ID #REQUIRED link IDREF #IMPLIED>
        """
        schema = parse_dtd(dtd, "S")
        refint = schema.refint_elements()[0]
        assert len(schema.reference_targets(refint)) == 2

    def test_join_views_from_dtd(self):
        schema = parse_dtd(_PO_DTD, "PO")
        tree = construct_schema_tree(schema)
        added = augment_with_join_views(tree)
        # item's IDREF references item's own ID -> self-reference, which
        # join-view augmentation skips; no crash either way.
        assert isinstance(added, list)


class TestRecursionAndErrors:
    def test_recursive_dtd_cut_at_one_level(self):
        dtd = """
        <!ELEMENT section (title, section*)>
        <!ELEMENT title (#PCDATA)>
        """
        schema = parse_dtd(dtd, "S")
        # One nested section materialized, then the recursion is cut.
        sections = schema.elements_named("section")
        assert 1 <= len(sections) <= 2
        tree = construct_schema_tree(schema)
        assert tree.root.subtree_depth() >= 2

    def test_empty_dtd_raises(self):
        with pytest.raises(XmlSchemaParseError):
            parse_dtd("<!-- nothing here -->", "S")

    def test_duplicate_element_raises(self):
        with pytest.raises(XmlSchemaParseError):
            parse_dtd("<!ELEMENT a (#PCDATA)><!ELEMENT a (#PCDATA)>", "S")

    def test_attlist_for_unknown_element_raises(self):
        with pytest.raises(XmlSchemaParseError):
            parse_dtd("<!ELEMENT a (#PCDATA)><!ATTLIST ghost x CDATA #IMPLIED>", "S")


class TestEndToEnd:
    def test_dtd_schemas_match(self):
        """Two DTD purchase orders run through the full pipeline."""
        from repro import CupidMatcher

        other = """
        <!ELEMENT purchaseorder (heading, deliverto, items)>
        <!ELEMENT heading (#PCDATA)>
        <!ATTLIST heading
          ordernumber CDATA #REQUIRED
          orderdate CDATA #IMPLIED>
        <!ELEMENT deliverto (#PCDATA)>
        <!ATTLIST deliverto
          street CDATA #REQUIRED
          city CDATA #REQUIRED>
        <!ELEMENT items (entry*)>
        <!ELEMENT entry (#PCDATA)>
        <!ATTLIST entry
          quantity CDATA #REQUIRED>
        """
        source = parse_dtd(_PO_DTD, "CIDX")
        target = parse_dtd(other, "Other")
        result = CupidMatcher().match(source, target)
        pairs = result.leaf_mapping.name_pairs()
        assert ("street", "street") in pairs
        assert ("city", "city") in pairs
        assert ("qty", "quantity") in pairs
