"""Property-based tests for end-to-end matching invariants."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import CupidMatcher
from repro.config import CupidConfig
from repro.datasets.generator import PerturbationConfig, SchemaGenerator
from repro.eval.metrics import evaluate_mapping

_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestSelfMatchProperties:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @_SETTINGS
    def test_schema_matches_identical_copy_perfectly(self, seed):
        """Canonical example 1 generalized: any schema matched against
        an identical copy recovers every leaf correspondence."""
        generator = SchemaGenerator(seed=seed)
        schema = generator.generate(n_leaves=12, max_depth=3)
        copy, gold = generator.perturb(
            schema,
            PerturbationConfig(
                abbreviate=0, synonym=0, prefix_suffix=0, retype=0
            ),
        )
        result = CupidMatcher().match(schema, copy)
        quality = evaluate_mapping(result.leaf_mapping, gold)
        assert quality.recall == 1.0

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @_SETTINGS
    def test_all_similarities_bounded(self, seed):
        generator = SchemaGenerator(seed=seed)
        schema = generator.generate(n_leaves=10, max_depth=2)
        copy, _ = generator.perturb(schema)
        result = CupidMatcher().match(schema, copy)
        for value in result.treematch_result.wsim.values():
            assert 0.0 <= value <= 1.0
        for element in result.leaf_mapping:
            assert element.similarity >= result.treematch_result.wsim.get(
                (0, 0), 0.0
            ) or 0.0 <= element.similarity <= 1.0

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @_SETTINGS
    def test_leaf_mapping_meets_thaccept(self, seed):
        generator = SchemaGenerator(seed=seed)
        schema = generator.generate(n_leaves=10, max_depth=2)
        copy, _ = generator.perturb(schema)
        config = CupidConfig()
        result = CupidMatcher(config=config).match(schema, copy)
        for element in result.leaf_mapping:
            assert element.similarity >= config.thaccept

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @_SETTINGS
    def test_mapping_determinism(self, seed):
        """The same inputs always produce the same mapping."""
        generator_a = SchemaGenerator(seed=seed)
        schema_a = generator_a.generate(n_leaves=10, max_depth=2)
        copy_a, _ = generator_a.perturb(schema_a)
        first = CupidMatcher().match(schema_a, copy_a)

        generator_b = SchemaGenerator(seed=seed)
        schema_b = generator_b.generate(n_leaves=10, max_depth=2)
        copy_b, _ = generator_b.perturb(schema_b)
        second = CupidMatcher().match(schema_b, copy_b)

        assert first.leaf_mapping.path_pairs() == second.leaf_mapping.path_pairs()

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @_SETTINGS
    def test_abbreviation_rename_preserves_most_matches(self, seed):
        """Renaming with known abbreviations is what the thesaurus is
        for: recall should stay high."""
        generator = SchemaGenerator(seed=seed)
        schema = generator.generate(n_leaves=12, max_depth=2)
        copy, gold = generator.perturb(
            schema,
            PerturbationConfig(
                abbreviate=1.0, synonym=0, prefix_suffix=0, retype=0
            ),
        )
        result = CupidMatcher().match(schema, copy)
        quality = evaluate_mapping(result.leaf_mapping, gold)
        assert quality.recall >= 0.85

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @_SETTINGS
    def test_one_to_one_extraction_is_injective(self, seed):
        generator = SchemaGenerator(seed=seed)
        schema = generator.generate(n_leaves=10, max_depth=2)
        copy, _ = generator.perturb(schema)
        result = CupidMatcher().match(schema, copy)
        assert result.one_to_one().is_one_to_one()


class TestFlattenRobustness:
    @given(seed=st.integers(min_value=0, max_value=5_000))
    @_SETTINGS
    def test_flattened_copy_still_matches(self, seed):
        """Intuition (c) of Section 6 / canonical example 5: leaf-based
        structural matching absorbs nesting differences."""
        generator = SchemaGenerator(seed=seed)
        schema = generator.generate(n_leaves=12, max_depth=3)
        copy, gold = generator.perturb(
            schema,
            PerturbationConfig(
                abbreviate=0, synonym=0, prefix_suffix=0,
                retype=0, flatten=1.0,
            ),
        )
        result = CupidMatcher().match(schema, copy)
        quality = evaluate_mapping(result.leaf_mapping, gold)
        assert quality.recall >= 0.9
