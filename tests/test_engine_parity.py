"""Engine parity: dense and reference engines must agree bit-for-bit.

The dense engine (``config.engine = "dense"``) replaces the TreeMatch
hot path with contiguous-array arithmetic and memoizes the linguistic
phase; the reference engine is the correctness oracle. Because the
dense paths apply exactly the same IEEE-754 double operations, the
two must produce *identical* (not merely close) lsim tables, wsim
values, and leaf/non-leaf mappings — these tests assert exact
equality, on the canonical dataset, the Figure 2 walkthrough,
rdb_star, and seeded generator schemas (including the join-view DAG
and depth-pruned-frontier configurations).
"""

from __future__ import annotations

import pytest

from repro import CupidMatcher
from repro.config import CupidConfig
from repro.datasets.canonical import canonical_examples
from repro.datasets.figure2 import figure2_po, figure2_purchase_order
from repro.datasets.generator import PerturbationConfig, SchemaGenerator
from repro.datasets.rdb_star import rdb_schema, star_schema
from repro.structure.dense import (
    DenseSimilarityStore,
    numpy_available,
    resolve_backend,
)
from repro.structure.similarity import SimilarityStore


def _mapping_signature(mapping):
    return sorted(
        (e.source_path, e.target_path, e.similarity) for e in mapping
    )


def _wsim_signature(result):
    """wsim values keyed by node *paths* (node ids differ across runs)."""
    source_paths = {n.node_id: n.path() for n in result.source_tree.nodes()}
    target_paths = {n.node_id: n.path() for n in result.target_tree.nodes()}
    return sorted(
        (source_paths[s], target_paths[t], value)
        for (s, t), value in result.treematch_result.wsim.items()
    )


def _run(source, target, engine, **overrides):
    config = CupidConfig(engine=engine, **overrides)
    return CupidMatcher(config=config).match(source, target)


def assert_parity(source, target, **overrides):
    dense = _run(source, target, "dense", **overrides)
    reference = _run(source, target, "reference", **overrides)

    assert sorted(dense.lsim_table.items()) == sorted(
        reference.lsim_table.items()
    )
    assert _wsim_signature(dense) == _wsim_signature(reference)
    assert _mapping_signature(dense.leaf_mapping) == _mapping_signature(
        reference.leaf_mapping
    )
    assert _mapping_signature(dense.nonleaf_mapping) == _mapping_signature(
        reference.nonleaf_mapping
    )
    tm_dense = dense.treematch_result
    tm_reference = reference.treematch_result
    assert tm_dense.compared_pairs == tm_reference.compared_pairs
    assert tm_dense.pruned_pairs == tm_reference.pruned_pairs
    assert tm_dense.scaled_pairs == tm_reference.scaled_pairs
    assert isinstance(tm_dense.sims, DenseSimilarityStore)
    assert not isinstance(tm_reference.sims, DenseSimilarityStore)
    return dense, reference


class TestCanonicalParity:
    @pytest.mark.parametrize("example_id", [1, 2, 3, 4, 5, 6])
    def test_canonical_example(self, example_id):
        example = canonical_examples()[example_id - 1]
        assert_parity(example.schema1, example.schema2)


class TestFigure2Parity:
    def test_figure2_walkthrough(self):
        assert_parity(figure2_po(), figure2_purchase_order())

    def test_figure2_stdlib_backend(self):
        assert_parity(
            figure2_po(), figure2_purchase_order(), dense_backend="stdlib"
        )

    def test_figure2_no_optional_discount(self):
        assert_parity(
            figure2_po(),
            figure2_purchase_order(),
            discount_optional_leaves=False,
        )


class TestRdbStarParity:
    def test_rdb_star(self):
        # Join-view augmentation turns both trees into DAGs, so this
        # exercises the gather (non-contiguous leaf slice) path.
        assert_parity(rdb_schema(), star_schema())

    def test_rdb_star_without_joins(self):
        assert_parity(rdb_schema(), star_schema(), use_refint_joins=False)

    def test_rdb_star_leaf_prune_depth(self):
        # Depth-pruned frontiers contain non-leaf stand-ins, forcing
        # the dense engine's fallback to the per-pair reference loop.
        assert_parity(rdb_schema(), star_schema(), leaf_prune_depth=2)


class TestGeneratedSchemasParity:
    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_perturbed_generated_schema(self, seed):
        generator = SchemaGenerator(seed=seed)
        schema = generator.generate(n_leaves=30, max_depth=3)
        copy, _ = generator.perturb(
            schema, PerturbationConfig(abbreviate=0.3, synonym=0.2)
        )
        assert_parity(schema, copy)

    def test_generated_schema_refint_dag(self):
        generator = SchemaGenerator(seed=7)
        schema = generator.generate(n_leaves=24, max_depth=3)
        copy, _ = generator.perturb(schema, PerturbationConfig())
        assert_parity(schema, copy, use_refint_joins=True)

    def test_generated_schema_leaf_prune_depth(self):
        generator = SchemaGenerator(seed=13)
        schema = generator.generate(n_leaves=24, max_depth=4)
        copy, _ = generator.perturb(schema, PerturbationConfig())
        assert_parity(schema, copy, leaf_prune_depth=1)

    def test_generated_schema_no_pruning(self):
        generator = SchemaGenerator(seed=5)
        schema = generator.generate(n_leaves=20, max_depth=3)
        copy, _ = generator.perturb(schema, PerturbationConfig())
        assert_parity(schema, copy, prune_by_leaf_count=False)


class TestDuplicateHeavyParity:
    """The distinct-name kernel must stay bit-identical where it pays
    off most: schemas whose names repeat heavily."""

    @pytest.mark.parametrize("seed", [7, 11])
    def test_repetition_workload(self, seed):
        generator = SchemaGenerator(seed=seed)
        schema = generator.generate(
            n_leaves=40, max_depth=3, name_repetition=0.8
        )
        copy, _ = generator.perturb(
            schema, PerturbationConfig(abbreviate=0.3, synonym=0.2)
        )
        assert_parity(schema, copy)

    def test_wide_star_shape(self):
        generator = SchemaGenerator(seed=11)
        schema = generator.generate(
            n_leaves=48, max_depth=2, fanout=12, name_repetition=0.9
        )
        copy, _ = generator.perturb(schema, PerturbationConfig())
        assert_parity(schema, copy)

    def test_repetition_stdlib_backend(self):
        generator = SchemaGenerator(seed=13)
        schema = generator.generate(
            n_leaves=36, max_depth=3, name_repetition=0.7
        )
        copy, _ = generator.perturb(schema, PerturbationConfig())
        assert_parity(schema, copy, dense_backend="stdlib")

    @pytest.mark.parametrize("repetition", [0.0, 0.8])
    def test_kernel_ablation_identical(self, repetition):
        """dense+kernel and dense without the kernel agree exactly
        (same lsim items, same mappings) — the kernel is a pure
        reorganization of the same float computations."""
        generator = SchemaGenerator(seed=17)
        schema = generator.generate(
            n_leaves=35, max_depth=3, name_repetition=repetition
        )
        copy, _ = generator.perturb(
            schema, PerturbationConfig(abbreviate=0.3, synonym=0.2)
        )
        with_kernel = _run(schema, copy, "dense")
        without = _run(schema, copy, "dense", linguistic_kernel=False)
        assert sorted(with_kernel.lsim_table.items()) == sorted(
            without.lsim_table.items()
        )
        assert _wsim_signature(with_kernel) == _wsim_signature(without)
        assert _mapping_signature(with_kernel.leaf_mapping) == (
            _mapping_signature(without.leaf_mapping)
        )
        assert _mapping_signature(with_kernel.nonleaf_mapping) == (
            _mapping_signature(without.nonleaf_mapping)
        )

    def test_kernel_produces_factored_table(self):
        from repro.linguistic.kernel import FactoredLsimTable

        example = canonical_examples()[0]
        dense = _run(example.schema1, example.schema2, "dense")
        reference = _run(example.schema1, example.schema2, "reference")
        assert isinstance(dense.lsim_table, FactoredLsimTable)
        assert not isinstance(reference.lsim_table, FactoredLsimTable)
        # Factored reads agree with the materialized dict form.
        for (id1, id2), value in reference.lsim_table.items():
            assert dense.lsim_table.get_by_id(id1, id2) == value


class TestBackendParity:
    """numpy and stdlib dense backends agree with each other too."""

    def test_backends_identical(self):
        source, target = figure2_po(), figure2_purchase_order()
        stdlib = _run(source, target, "dense", dense_backend="stdlib")
        auto = _run(source, target, "dense", dense_backend="auto")
        assert _wsim_signature(stdlib) == _wsim_signature(auto)
        assert _mapping_signature(stdlib.leaf_mapping) == _mapping_signature(
            auto.leaf_mapping
        )
        assert stdlib.treematch_result.sims.backend == "stdlib"
        expected = "numpy" if numpy_available() else "stdlib"
        assert auto.treematch_result.sims.backend == expected

    @pytest.mark.skipif(
        not numpy_available(), reason="numpy not installed"
    )
    def test_forced_numpy_backend(self):
        result = _run(
            figure2_po(),
            figure2_purchase_order(),
            "dense",
            dense_backend="numpy",
        )
        assert result.treematch_result.sims.backend == "numpy"

    def test_resolve_backend(self):
        assert resolve_backend("stdlib") == "stdlib"
        expected = "numpy" if numpy_available() else "stdlib"
        assert resolve_backend("auto") == expected


class TestVectorizedPaths:
    """Force the numpy vector paths (normally reserved for blocks of
    >= _VECTOR_MIN_CELLS cells) onto small schemas and re-assert
    parity, covering both the contiguous-slice and the join-view
    gather (np.ix_) branches."""

    @pytest.fixture(autouse=True)
    def _force_vectorization(self, monkeypatch):
        if not numpy_available():
            pytest.skip("numpy not installed")
        monkeypatch.setattr(DenseSimilarityStore, "_VECTOR_MIN_CELLS", 1)

    def test_figure2_all_vector(self):
        assert_parity(figure2_po(), figure2_purchase_order())

    def test_rdb_star_gather_vector(self):
        # Join-view DAG leaves are non-contiguous: np.ix_ gather path.
        assert_parity(rdb_schema(), star_schema())

    def test_generated_schema_vector(self):
        generator = SchemaGenerator(seed=17)
        schema = generator.generate(n_leaves=25, max_depth=3)
        copy, _ = generator.perturb(
            schema, PerturbationConfig(abbreviate=0.3, synonym=0.2)
        )
        assert_parity(schema, copy)


class TestDenseStoreBehaviour:
    def test_scalar_accessors_match_reference_defaults(self):
        """Dense matrix defaults equal the reference lazy defaults."""
        from repro.linguistic.matcher import LsimTable
        from repro.model.datatypes import default_compatibility_table
        from repro.tree.construction import construct_schema_tree

        source, target = figure2_po(), figure2_purchase_order()
        config = CupidConfig()
        compat = default_compatibility_table()
        source_tree = construct_schema_tree(source)
        target_tree = construct_schema_tree(target)
        table = LsimTable()
        dense = DenseSimilarityStore(
            table, config, compat, source_tree, target_tree
        )
        reference = SimilarityStore(table, config, compat)
        for s in source_tree.leaves():
            for t in target_tree.leaves():
                assert dense.ssim(s, t) == reference.ssim(s, t)
                assert dense.wsim(s, t) == reference.wsim(s, t)

    def test_set_and_scale_roundtrip(self):
        from repro.linguistic.matcher import LsimTable
        from repro.model.datatypes import default_compatibility_table
        from repro.tree.construction import construct_schema_tree

        source, target = figure2_po(), figure2_purchase_order()
        config = CupidConfig()
        source_tree = construct_schema_tree(source)
        target_tree = construct_schema_tree(target)
        dense = DenseSimilarityStore(
            LsimTable(),
            config,
            default_compatibility_table(),
            source_tree,
            target_tree,
        )
        s = source_tree.leaves()[0]
        t = target_tree.leaves()[0]
        dense.set_ssim(s, t, 0.7)
        assert dense.ssim(s, t) == 0.7
        dense.scale_ssim(s, t, 2.0)
        assert dense.ssim(s, t) == 1.0  # clamped
        # wsim reflects the update immediately.
        expected = (
            config.wstruct_leaf * 1.0
            + (1.0 - config.wstruct_leaf) * dense.lsim(s, t)
        )
        assert dense.wsim(s, t) == expected
