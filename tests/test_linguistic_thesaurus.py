"""Tests for the thesaurus and the bundled lexicon."""

import pytest

from repro.linguistic.lexicon import (
    builtin_thesaurus,
    paper_experiment_thesaurus,
)
from repro.linguistic.thesaurus import Thesaurus, empty_thesaurus


class TestThesaurus:
    def test_synonym_symmetric(self):
        thesaurus = Thesaurus()
        thesaurus.add_synonym("invoice", "bill", 0.95)
        assert thesaurus.relatedness("invoice", "bill") == 0.95
        assert thesaurus.relatedness("bill", "invoice") == 0.95

    def test_lookup_case_insensitive(self):
        thesaurus = Thesaurus()
        thesaurus.add_synonym("Invoice", "Bill", 0.9)
        assert thesaurus.relatedness("INVOICE", "bill") == 0.9

    def test_missing_entry_is_none(self):
        assert Thesaurus().relatedness("a", "b") is None

    def test_strength_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Thesaurus().add_synonym("a", "b", 1.5)

    def test_self_synonym_rejected(self):
        with pytest.raises(ValueError):
            Thesaurus().add_synonym("a", "a", 0.9)

    def test_empty_term_rejected(self):
        with pytest.raises(ValueError):
            Thesaurus().add_synonym("", "b", 0.9)

    def test_hypernym_stored_symmetrically(self):
        thesaurus = Thesaurus()
        thesaurus.add_hypernym("customer", "person", 0.75)
        assert thesaurus.relatedness("person", "customer") == 0.75

    def test_abbreviation_expansion(self):
        thesaurus = Thesaurus()
        thesaurus.add_abbreviation("po", ["purchase", "order"])
        assert thesaurus.expansion("PO") == ("purchase", "order")
        assert thesaurus.expansion("nope") is None

    def test_stopwords(self):
        thesaurus = Thesaurus()
        thesaurus.add_stopwords(["of", "the"])
        assert thesaurus.is_stopword("OF")
        assert not thesaurus.is_stopword("order")

    def test_concepts(self):
        thesaurus = Thesaurus()
        thesaurus.add_concept("money", ["price", "cost"])
        assert thesaurus.concept_of("Price") == "money"
        assert thesaurus.concept_of("order") is None

    def test_entries_unique(self):
        thesaurus = Thesaurus()
        thesaurus.add_synonym("a", "b", 0.9)
        thesaurus.add_synonym("c", "d", 0.8)
        assert len(thesaurus.entries) == 2

    def test_merged_with_other_wins(self):
        base = Thesaurus("base")
        base.add_synonym("a", "b", 0.5)
        override = Thesaurus("override")
        override.add_synonym("a", "b", 0.9)
        merged = base.merged_with(override)
        assert merged.relatedness("a", "b") == 0.9

    def test_merged_keeps_both_vocabularies(self):
        base = Thesaurus("base")
        base.add_abbreviation("po", ["purchase", "order"])
        extra = Thesaurus("extra")
        extra.add_synonym("x", "y", 0.7)
        merged = base.merged_with(extra)
        assert merged.expansion("po") is not None
        assert merged.relatedness("x", "y") == 0.7

    def test_empty_thesaurus_knows_nothing(self):
        thesaurus = empty_thesaurus()
        assert thesaurus.relatedness("invoice", "bill") is None
        assert thesaurus.expansion("po") is None
        assert not thesaurus.is_stopword("of")


class TestBuiltinLexicon:
    def test_paper_synonyms_present(self):
        """Section 4: 'synonyms (Bill and Invoice)' / ship-deliver."""
        thesaurus = builtin_thesaurus()
        assert thesaurus.relatedness("invoice", "bill") > 0.8
        assert thesaurus.relatedness("ship", "deliver") > 0.8

    def test_paper_abbreviations_present(self):
        thesaurus = builtin_thesaurus()
        assert thesaurus.expansion("qty") == ("quantity",)
        assert thesaurus.expansion("uom") == ("unit", "of", "measure")
        assert thesaurus.expansion("po") == ("purchase", "order")
        assert thesaurus.expansion("num") == ("number",)

    def test_money_concept_from_paper(self):
        """Section 5.1: Price, Cost and Value -> concept Money."""
        thesaurus = builtin_thesaurus()
        for trigger in ("price", "cost", "value"):
            assert thesaurus.concept_of(trigger) == "money"

    def test_common_words_are_stopwords(self):
        thesaurus = builtin_thesaurus()
        for word in ("of", "the", "and", "to"):
            assert thesaurus.is_stopword(word)


class TestPaperExperimentThesaurus:
    def test_exactly_the_six_relevant_entries(self):
        """Section 9.2: 4 abbreviations + 2 synonym entries."""
        thesaurus = paper_experiment_thesaurus()
        assert len(thesaurus.entries) == 2
        assert thesaurus.expansion("uom") is not None
        assert thesaurus.expansion("po") is not None
        assert thesaurus.expansion("qty") is not None
        assert thesaurus.expansion("num") is not None
        assert thesaurus.relatedness("invoice", "bill") is not None
        assert thesaurus.relatedness("ship", "deliver") is not None

    def test_no_extra_synonyms(self):
        thesaurus = paper_experiment_thesaurus()
        assert thesaurus.relatedness("client", "customer") is None


class TestRelatedTerms:
    def test_symmetric_and_sorted(self, thesaurus):
        related = thesaurus.related_terms("invoice")
        assert ("bill", related[0][1]) in related or related
        strengths = [s for _, s in related]
        assert strengths == sorted(strengths, reverse=True)
        # Symmetric: every hop is walkable backwards.
        for term, strength in related:
            assert (("invoice", strength)
                    in thesaurus.related_terms(term))

    def test_unknown_term_empty(self, thesaurus):
        assert thesaurus.related_terms("zzznope") == []

    def test_cache_invalidated_on_mutation(self, thesaurus):
        before = thesaurus.related_terms("gadget")
        assert before == []
        thesaurus.add_synonym("gadget", "widget", 0.8)
        assert ("widget", 0.8) in thesaurus.related_terms("gadget")

    def test_returned_list_is_a_copy(self, thesaurus):
        thesaurus.related_terms("invoice").clear()
        assert thesaurus.related_terms("invoice")
