"""CLI tests for ``repro index`` and ``repro search``."""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main

_ORDERS = """
CREATE TABLE Orders (
  OrderID int PRIMARY KEY,
  Quantity int,
  UnitPrice money,
  City varchar(30)
);
"""

_PURCHASES = """
CREATE TABLE Purchases (
  PurchaseID int PRIMARY KEY,
  Qty int,
  UnitCost money,
  Town varchar(30)
);
"""

_SHIPMENTS = """
CREATE TABLE Shipments (
  ShipmentID int PRIMARY KEY,
  Carrier varchar(40),
  Weight decimal(8,2)
);
"""

_QUERY = """
CREATE TABLE Sales (
  SaleID int PRIMARY KEY,
  Quantity int,
  Price money,
  City varchar(30)
);
"""


@pytest.fixture
def corpus_dir(tmp_path):
    corpus = tmp_path / "corpus"
    corpus.mkdir()
    (corpus / "orders.sql").write_text(_ORDERS)
    (corpus / "purchases.sql").write_text(_PURCHASES)
    (corpus / "shipments.sql").write_text(_SHIPMENTS)
    query = tmp_path / "query.sql"
    query.write_text(_QUERY)
    return str(corpus), str(query), str(tmp_path / "repo")


class TestIndexCommand:
    def test_index_directory(self, corpus_dir, capsys):
        corpus, _query, repo = corpus_dir
        assert main(["index", corpus, "--repo", repo]) == 0
        out = capsys.readouterr().out
        assert "3 file(s) ingested" in out
        assert os.path.exists(os.path.join(repo, "repository.json"))
        assert len(os.listdir(os.path.join(repo, "schemas"))) == 3

    def test_index_is_incremental(self, corpus_dir, capsys):
        corpus, _query, repo = corpus_dir
        main(["index", os.path.join(corpus, "orders.sql"), "--repo", repo])
        main(["index", corpus, "--repo", repo])
        out = capsys.readouterr().out
        assert "repository now holds 3 schema(s)" in out

    def test_index_no_schemas_errors(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        code = main(["index", str(empty), "--repo", str(tmp_path / "r")])
        assert code == 1
        assert "no schema files" in capsys.readouterr().err

    def test_index_non_schema_json_fails_cleanly(
        self, corpus_dir, capsys
    ):
        """A directory with stray JSON (a mapping export, a config)
        must produce a one-line error naming the file, not a
        KeyError traceback."""
        corpus, _query, repo = corpus_dir
        stray = os.path.join(corpus, "notaschema.json")
        with open(stray, "w") as handle:
            handle.write('{"matches": []}')
        assert main(["index", corpus, "--repo", repo]) == 1
        err = capsys.readouterr().err
        assert "notaschema.json" in err
        assert "not a serialized schema" in err

    def test_index_stats(self, corpus_dir, capsys):
        corpus, _query, repo = corpus_dir
        main(["index", corpus, "--repo", repo, "--stats"])
        err = capsys.readouterr().err
        assert "repository cache" in err
        assert "index_tokens" in err


class TestSearchCommand:
    def test_search_text(self, corpus_dir, capsys):
        corpus, query, repo = corpus_dir
        main(["index", corpus, "--repo", repo])
        capsys.readouterr()
        assert main(
            ["search", query, "--repo", repo, "-k", "2",
             "--candidates", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "3 schemas, 2 matched, 1 pruned" in out
        # The kindred purchase-order schema outranks shipments.
        first = out.splitlines()[1]
        assert first.startswith("1. ") and "orders" in first

    def test_search_json(self, corpus_dir, capsys):
        corpus, query, repo = corpus_dir
        main(["index", corpus, "--repo", repo])
        capsys.readouterr()
        assert main(
            ["search", query, "--repo", repo, "-k", "1",
             "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        # load_schema names .sql schemas after the file basename.
        assert payload["query_schema"] == "query"
        assert payload["stats"]["corpus_size"] == 3
        best = payload["matches"][0]
        assert best["schema_id"].startswith("orders-")
        assert best["score"] > 0
        assert best["elements"]
        assert payload["repository"]["searches"] == 1

    def test_search_missing_repo_errors(self, corpus_dir, capsys):
        _corpus, query, repo = corpus_dir
        assert main(["search", query, "--repo", repo]) == 1
        assert "no schema repository" in capsys.readouterr().err

    def test_search_min_similarity_and_one_to_one(
        self, corpus_dir, capsys
    ):
        corpus, query, repo = corpus_dir
        main(["index", corpus, "--repo", repo])
        capsys.readouterr()
        main(
            ["search", query, "--repo", repo, "-k", "1", "--one-to-one",
             "--min-similarity", "0.99", "--format", "json"]
        )
        payload = json.loads(capsys.readouterr().out)
        # Sales vs Orders under a 0.99 floor: only near-perfect pairs.
        for element in payload["matches"][0]["elements"]:
            assert element["similarity"] >= 0.99
