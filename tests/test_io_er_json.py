"""Tests for the ER model and JSON serialization."""

import json

import pytest

from repro.exceptions import SchemaError
from repro.io.er_model import ERModel, er_model_from_schema
from repro.io.json_io import (
    mapping_to_dict,
    mapping_to_json,
    schema_from_dict,
    schema_from_json,
    schema_to_dict,
    schema_to_json,
)
from repro.io.sql_ddl import parse_sql_ddl
from repro.mapping.mapping import Mapping, MappingElement
from repro.model.builder import schema_from_tree
from repro.model.datatypes import DataType


class TestERModel:
    def test_entities_and_attributes(self):
        model = ERModel("M")
        customer = model.add_entity("Customer")
        customer.add_attribute("Name", DataType.STRING)
        customer.add_attribute("ID", DataType.INTEGER, is_key=True)
        assert len(model.entities) == 1
        assert model.entity("customer").attributes[1].is_key

    def test_duplicate_entity_rejected(self):
        model = ERModel("M")
        model.add_entity("Customer")
        with pytest.raises(SchemaError):
            model.add_entity("customer")

    def test_relationship_requires_known_entities(self):
        model = ERModel("M")
        model.add_entity("A")
        with pytest.raises(SchemaError):
            model.add_relationship("rel", ["A", "Ghost"])

    def test_neighbors(self):
        model = ERModel("M")
        model.add_entity("A")
        model.add_entity("B")
        model.add_entity("C")
        model.add_relationship("r1", ["A", "B"])
        model.add_relationship("r2", ["A", "C"])
        assert set(model.neighbors("A")) == {"B", "C"}

    def test_same_named_relationships_allowed(self):
        model = ERModel("M")
        for name in ("A", "B", "C"):
            model.add_entity(name)
        model.add_relationship("has", ["A", "B"])
        model.add_relationship("has", ["A", "C"])
        assert len(model.relationships) == 2

    def test_ternary_relationship(self):
        model = ERModel("M")
        for name in ("A", "B", "C"):
            model.add_entity(name)
        rel = model.add_relationship("tri", ["A", "B", "C"])
        assert len(rel.participants) == 3

    def test_unknown_entity_raises(self):
        with pytest.raises(SchemaError):
            ERModel("M").entity("ghost")


class TestErFromSchema:
    def test_inner_nodes_with_atomic_children_become_entities(self):
        schema = schema_from_tree(
            "S", {"Customer": {"Name": "string", "ID": "int"}}
        )
        model = er_model_from_schema(schema)
        names = {e.name for e in model.entities}
        assert "Customer" in names
        customer = model.entity("Customer")
        assert {a.name for a in customer.attributes} == {"Name", "ID"}

    def test_containment_becomes_relationship(self):
        schema = schema_from_tree(
            "S",
            {"Order": {"ID": "int", "Item": {"Qty": "int"}}},
        )
        model = er_model_from_schema(schema)
        rel_names = {r.name for r in model.relationships}
        assert "Item" in rel_names or "Order" in rel_names


class TestJsonRoundTrip:
    @pytest.fixture
    def schema(self):
        return parse_sql_ddl(
            """
            CREATE TABLE A (x int PRIMARY KEY, y varchar(10));
            CREATE TABLE B (z int REFERENCES A(x));
            """,
            "DB",
        )

    def test_roundtrip_preserves_structure(self, schema):
        data = schema_to_dict(schema)
        rebuilt = schema_from_dict(data)
        assert rebuilt.name == schema.name
        assert len(rebuilt.elements) == len(schema.elements)
        assert len(rebuilt.relationships) == len(schema.relationships)

    def test_roundtrip_preserves_flags(self, schema):
        rebuilt = schema_from_dict(schema_to_dict(schema))
        x = rebuilt.element_named("x")
        assert x.is_key
        assert x.data_type is DataType.INTEGER
        refints = rebuilt.refint_elements()
        assert len(refints) == 1
        assert refints[0].not_instantiated

    def test_same_dict_loadable_twice(self, schema):
        data = schema_to_dict(schema)
        first = schema_from_dict(data)
        second = schema_from_dict(data)
        ids_first = {e.element_id for e in first.elements}
        ids_second = {e.element_id for e in second.elements}
        assert ids_first.isdisjoint(ids_second)

    def test_json_text_roundtrip(self, schema):
        text = schema_to_json(schema)
        rebuilt = schema_from_json(text)
        assert rebuilt.name == schema.name

    def test_mapping_serialization(self):
        mapping = Mapping("S", "T")
        mapping.add(
            MappingElement(
                source_path=("S", "a"),
                target_path=("T", "b"),
                similarity=0.75,
            )
        )
        data = mapping_to_dict(mapping)
        assert data["source_schema"] == "S"
        assert data["elements"][0]["similarity"] == 0.75
        parsed = json.loads(mapping_to_json(mapping))
        assert parsed == data
