"""Dirty-set incremental recompute_wsim parity.

The dense engine's second TreeMatch pass skips node pairs whose leaf
blocks provably saw no thaccept crossing since their first-pass visit
(:meth:`DenseSimilarityStore.block_dirty_since`). These tests assert
the property that makes the skip sound: on generated schemas (with and
without numpy, with and without name repetition), the incremental pass
produces *exactly* the map a forced full rescan produces, which in turn
matches the reference engine's always-full rescan.
"""

from __future__ import annotations

import pytest

from repro.config import CupidConfig
from repro.datasets.generator import PerturbationConfig, SchemaGenerator
from repro.pipeline.pipeline import MatchPipeline
from repro.structure.dense import DenseSimilarityStore, numpy_available


def _workload(seed, n_leaves=40, repetition=0.0):
    generator = SchemaGenerator(seed=seed)
    schema = generator.generate(
        n_leaves=n_leaves, max_depth=3, name_repetition=repetition
    )
    copy, _ = generator.perturb(
        schema, PerturbationConfig(abbreviate=0.3, synonym=0.2)
    )
    return schema, copy


def _recompute_signature(source, target, config, force_full):
    """Path-keyed refreshed wsim map of one full match + second pass."""
    pipeline = MatchPipeline.default(config=config)
    prep_s = pipeline.prepare(source)
    prep_t = pipeline.prepare(target)
    table = pipeline.linguistic.compute_prepared(
        prep_s.linguistic, prep_t.linguistic
    )
    result = pipeline.treematch.run(prep_s.tree, prep_t.tree, table)
    refreshed = pipeline.treematch.recompute_wsim(
        result, force_full=force_full
    )
    source_paths = {n.node_id: n.path() for n in prep_s.tree.nodes()}
    target_paths = {n.node_id: n.path() for n in prep_t.tree.nodes()}
    signature = sorted(
        (source_paths[s], target_paths[t], value)
        for (s, t), value in refreshed.items()
    )
    return signature, result


BACKENDS = ["stdlib"] + (["numpy"] if numpy_available() else [])


class TestIncrementalMatchesFullRescan:
    @pytest.mark.parametrize("seed", [3, 11, 29])
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_generated_schema(self, seed, backend):
        source, target = _workload(seed)
        config = CupidConfig(dense_backend=backend)
        incremental, inc_result = _recompute_signature(
            source, target, config, force_full=False
        )
        full, full_result = _recompute_signature(
            source, target, config, force_full=True
        )
        assert incremental == full
        assert inc_result.recompute_pairs == full_result.recompute_pairs
        # force_full must really disable the skip.
        assert full_result.recompute_skipped == 0
        assert full_result.recompute_dirty == full_result.recompute_pairs

    @pytest.mark.parametrize("seed", [7, 19])
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_duplicate_heavy_schema(self, seed, backend):
        source, target = _workload(seed, n_leaves=50, repetition=0.8)
        config = CupidConfig(dense_backend=backend)
        incremental, _ = _recompute_signature(
            source, target, config, force_full=False
        )
        full, _ = _recompute_signature(
            source, target, config, force_full=True
        )
        assert incremental == full

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_blocked_store(self, backend):
        """The blocked store maintains the same crossing stamps, so
        the incremental skip stays exact on it (small tiles force
        plenty of tile-boundary traffic)."""
        source, target = _workload(11)
        config = CupidConfig(
            store="blocked", dense_backend=backend, block_size=16
        )
        incremental, inc_result = _recompute_signature(
            source, target, config, force_full=False
        )
        full, _ = _recompute_signature(
            source, target, config, force_full=True
        )
        assert incremental == full
        assert inc_result.recompute_skipped > 0

    @pytest.mark.parametrize("seed", [3, 11])
    def test_matches_reference_engine(self, seed):
        source, target = _workload(seed)
        incremental, _ = _recompute_signature(
            source, target, CupidConfig(), force_full=False
        )
        reference, reference_result = _recompute_signature(
            source, target, CupidConfig(engine="reference"),
            force_full=False,
        )
        assert incremental == reference
        # The reference engine never skips: it is the oracle.
        assert reference_result.recompute_skipped == 0

    def test_join_view_dag(self):
        """Gather-list (non-contiguous) leaf indices stay sound."""
        from repro.datasets.rdb_star import rdb_schema, star_schema

        incremental, _ = _recompute_signature(
            rdb_schema(), star_schema(), CupidConfig(), force_full=False
        )
        full, _ = _recompute_signature(
            rdb_schema(), star_schema(), CupidConfig(), force_full=True
        )
        assert incremental == full

    @pytest.mark.parametrize("depth", [1, 2])
    @pytest.mark.parametrize("seed", [5, 11])
    def test_leaf_prune_depth_incremental_parity(self, seed, depth):
        """Under leaf_prune_depth the skip is decided per pair: pairs
        whose frontier is fully real leaves (frontier == complete leaf
        set, every read covered by the crossing stamps) may skip; pairs
        with non-leaf stand-ins stand down. The incremental pass must
        still reproduce the forced full rescan exactly."""
        source, target = _workload(seed, n_leaves=30)
        config = CupidConfig(leaf_prune_depth=depth)
        incremental, inc_result = _recompute_signature(
            source, target, config, force_full=False
        )
        full, full_result = _recompute_signature(
            source, target, config, force_full=True
        )
        assert incremental == full
        assert inc_result.recompute_pairs == full_result.recompute_pairs
        assert full_result.recompute_skipped == 0

    def test_leaf_prune_depth_standdown_counter(self):
        """Stand-in frontier pairs are recomputed and counted, so
        --stats can explain a depressed skip rate under pruning."""
        source, target = _workload(5, n_leaves=30)
        _, result = _recompute_signature(
            source, target, CupidConfig(leaf_prune_depth=2),
            force_full=False,
        )
        # Shallow subtrees (frontier == real leaves) may now skip ...
        assert result.recompute_skipped > 0
        # ... deep ones must stand down, and be accounted for.
        assert result.recompute_standdown > 0
        assert (
            result.recompute_dirty + result.recompute_skipped
            == result.recompute_pairs
        )
        assert result.recompute_standdown <= result.recompute_dirty

    def test_leaf_prune_depth_matches_reference(self):
        """End to end: prune-depth incremental == the reference engine
        (which recomputes everything from dicts)."""
        source, target = _workload(11, n_leaves=30)
        incremental, _ = _recompute_signature(
            source, target, CupidConfig(leaf_prune_depth=1),
            force_full=False,
        )
        reference, _ = _recompute_signature(
            source, target,
            CupidConfig(leaf_prune_depth=1, engine="reference"),
            force_full=False,
        )
        assert incremental == reference


class TestDirtySetEffectiveness:
    def test_skips_clean_pairs(self):
        """On the standard perturbed workload a meaningful share of
        second-pass pairs is provably clean — the optimization must
        actually engage, not silently degrade to a full rescan."""
        source, target = _workload(11, n_leaves=80)
        _, result = _recompute_signature(
            source, target, CupidConfig(), force_full=False
        )
        assert isinstance(result.sims, DenseSimilarityStore)
        assert result.recompute_skipped > 0
        assert (
            result.recompute_dirty + result.recompute_skipped
            == result.recompute_pairs
        )

    def test_no_context_variant_skips_everything(self):
        """Without cinc/cdec scaling nothing ever crosses thaccept, so
        every pair is clean on the second pass."""
        source, target = _workload(3, n_leaves=30)
        pipeline = MatchPipeline.default().with_variant(
            "structural", "no-context"
        )
        prep_s = pipeline.prepare(source)
        prep_t = pipeline.prepare(target)
        table = pipeline.linguistic.compute_prepared(
            prep_s.linguistic, prep_t.linguistic
        )
        treematch = pipeline.get_stage("structural").treematch
        result = treematch.run(prep_s.tree, prep_t.tree, table)
        treematch.recompute_wsim(result)
        assert result.recompute_dirty == 0
        assert result.recompute_skipped == result.recompute_pairs
