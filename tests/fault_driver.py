"""Subprocess driver for the crash sweep in ``tests/test_faults.py``.

Runs a deterministic ingest workload against a repository while the
fault plan inherited through ``REPRO_FAULTS`` decides where to crash.
The protocol is one line per step on stdout, flushed before the next
fallible call, so the parent can reconstruct how far the driver got
no matter where it died::

    ready                       baseline manifest durable
    intent <id>                 about to ingest <id>
    ingested <id>               ingest returned (artifact durable)
    committed <id>              save returned (<id> manifest-published)
    compacted                   final compaction returned
    done                        workload complete

Ids are computed *before* ingesting (they are content-addressed, so
the parent and the driver derive the same id from the same generated
schema), which is what lets the parent bound the reopened corpus:
``committed`` ids must all be visible, and nothing outside the
``intent`` ids may be.

The corpus is a pure function of the seed argument — the parent
regenerates it to build the expected-results scratch repository.
"""

from __future__ import annotations

import sys

from repro.datasets.generator import SchemaGenerator
from repro.repository.artifacts import (
    canonical_schema_dict,
    schema_fingerprint,
)
from repro.repository.store import SchemaRepository, _slug

#: Schemas per driver run; fault hit numbers in the sweep specs are
#: chosen against this timeline (see test_faults.py).
CORPUS_SIZE = 5


def expected_id(schema) -> str:
    fingerprint = schema_fingerprint(canonical_schema_dict(schema))
    return f"{_slug(schema.name)}-{fingerprint[:12]}"


def corpus(seed: int):
    generator = SchemaGenerator(seed=seed)
    return [
        generator.generate(
            name=f"crash{i}", n_leaves=12, name_repetition=0.5
        )
        for i in range(CORPUS_SIZE)
    ]


def main() -> int:
    root, corpus_seed = sys.argv[1], int(sys.argv[2])
    repo = SchemaRepository(root)
    # Baseline manifest (repo.manifest hit 1) so even a kill during
    # the very first ingest leaves an openable repository behind.
    repo.save(auto_compact=False)
    print("ready", flush=True)
    schemas = corpus(corpus_seed)
    for schema in schemas:
        schema_id = expected_id(schema)
        print(f"intent {schema_id}", flush=True)
        repo.ingest(schema)
        print(f"ingested {schema_id}", flush=True)
        repo.save(auto_compact=False)
        print(f"committed {schema_id}", flush=True)
    # One search fills the linguistic memo, so the compaction's save
    # definitely has similarity-cache bytes to flush — giving the
    # ``repo.simcache`` fault site a deterministic invocation.
    repo.search(schemas[0], k=2)
    print("searched", flush=True)
    repo.compact()
    print("compacted", flush=True)
    print("done", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
