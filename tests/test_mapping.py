"""Tests for mappings, generation, and 1:1 assignment (Section 7)."""

import pytest

from repro import CupidMatcher
from repro.exceptions import MappingError
from repro.mapping.assignment import greedy_one_to_one, hungarian_one_to_one
from repro.mapping.mapping import Mapping, MappingElement
from repro.model.builder import schema_from_tree

try:  # pragma: no cover - environment-specific
    import scipy.optimize  # noqa: F401

    _HAS_SCIPY = True
except ImportError:  # pragma: no cover - environment-specific
    _HAS_SCIPY = False

requires_scipy = pytest.mark.skipif(
    not _HAS_SCIPY, reason="hungarian_one_to_one requires scipy"
)


def _element(source, target, score):
    return MappingElement(
        source_path=tuple(source.split(".")),
        target_path=tuple(target.split(".")),
        similarity=score,
    )


class TestMappingElement:
    def test_validation(self):
        with pytest.raises(MappingError):
            _element("a", "b", 1.5)
        with pytest.raises(MappingError):
            MappingElement(source_path=(), target_path=("b",), similarity=0.5)

    def test_accessors(self):
        element = _element("S.A.x", "T.B.y", 0.7)
        assert element.source_name == "x"
        assert element.target_name == "y"
        assert element.name_pair() == ("x", "y")
        assert element.path_pair() == ("S.A.x", "T.B.y")

    def test_str(self):
        assert "->" in str(_element("a.b", "c.d", 0.5))


class TestMapping:
    @pytest.fixture
    def mapping(self):
        mapping = Mapping("S", "T")
        mapping.add(_element("S.a", "T.x", 0.9))
        mapping.add(_element("S.a", "T.y", 0.8))
        mapping.add(_element("S.b", "T.z", 0.7))
        return mapping

    def test_len_and_iter(self, mapping):
        assert len(mapping) == 3
        assert len(list(mapping)) == 3

    def test_path_pairs(self, mapping):
        assert ("S.a", "T.x") in mapping.path_pairs()

    def test_targets_of(self, mapping):
        assert len(mapping.targets_of("S.a")) == 2

    def test_sources_of(self, mapping):
        assert len(mapping.sources_of("T.z")) == 1

    def test_best_per_target(self, mapping):
        best = mapping.best_per_target()
        assert best["T.x"].similarity == 0.9

    def test_sorted_by_similarity(self, mapping):
        scores = [e.similarity for e in mapping.sorted_by_similarity()]
        assert scores == sorted(scores, reverse=True)

    def test_is_one_to_one(self, mapping):
        assert not mapping.is_one_to_one()
        assert Mapping("S", "T", [_element("S.a", "T.x", 0.9)]).is_one_to_one()


class TestOneToOne:
    @pytest.fixture
    def ambiguous(self):
        mapping = Mapping("S", "T")
        mapping.add(_element("S.a", "T.x", 0.9))
        mapping.add(_element("S.a", "T.y", 0.8))
        mapping.add(_element("S.b", "T.x", 0.7))
        mapping.add(_element("S.b", "T.y", 0.6))
        return mapping

    def test_greedy_picks_best_disjoint(self, ambiguous):
        result = greedy_one_to_one(ambiguous)
        assert result.is_one_to_one()
        assert ("S.a", "T.x") in result.path_pairs()
        assert ("S.b", "T.y") in result.path_pairs()

    @requires_scipy
    def test_hungarian_maximizes_total(self, ambiguous):
        result = hungarian_one_to_one(ambiguous)
        assert result.is_one_to_one()
        total = sum(e.similarity for e in result)
        assert total == pytest.approx(0.9 + 0.6)

    @requires_scipy
    def test_hungarian_on_skewed_weights(self):
        """Hungarian beats greedy when greedy's first pick is costly."""
        mapping = Mapping("S", "T")
        mapping.add(_element("S.a", "T.x", 0.9))
        mapping.add(_element("S.a", "T.y", 0.85))
        mapping.add(_element("S.b", "T.x", 0.8))
        # greedy: a->x (0.9), b gets nothing matching y... b->? none.
        greedy = greedy_one_to_one(mapping)
        hungarian = hungarian_one_to_one(mapping)
        assert sum(e.similarity for e in hungarian) >= (
            sum(e.similarity for e in greedy)
        )

    def test_empty_mapping(self):
        empty = Mapping("S", "T")
        assert len(greedy_one_to_one(empty)) == 0

    @requires_scipy
    def test_empty_mapping_hungarian(self):
        assert len(hungarian_one_to_one(Mapping("S", "T"))) == 0


class TestGeneratedMappings:
    def test_naive_mapping_is_one_to_n(self):
        """Section 7: 'a source element may map to many target
        elements' — the single CIDX Contact maps into both contexts."""
        source = schema_from_tree(
            "S", {"Contact": {"Name": "string", "Phone": "string"}}
        )
        target = schema_from_tree(
            "T",
            {
                "Ship": {"Contact": {"Name": "string", "Phone": "string"}},
                "Bill": {"Contact": {"Name": "string", "Phone": "string"}},
            },
        )
        result = CupidMatcher().match(source, target)
        names = [
            e for e in result.leaf_mapping
            if e.source_name == "Name"
        ]
        assert len(names) == 2  # same source leaf, two targets

    def test_all_leaf_mappings_meet_thaccept(self, figure2_result):
        for element in figure2_result.leaf_mapping:
            assert element.similarity >= 0.5

    def test_nonleaf_mapping_excludes_leaves(self, figure2_result):
        for element in figure2_result.nonleaf_mapping:
            assert element.source_node is not None
            assert not element.source_node.is_leaf

    def test_combined_mapping(self, figure2_result):
        combined = figure2_result.mapping
        assert len(combined) == len(figure2_result.leaf_mapping) + len(
            figure2_result.nonleaf_mapping
        )

    def test_one_to_one_extraction(self, figure2_result):
        assert figure2_result.one_to_one().is_one_to_one()
