"""Edge cases and failure injection across the pipeline."""

import pytest

from repro import (
    CupidConfig,
    CupidMatcher,
    SchemaBuilder,
    empty_thesaurus,
    schema_from_tree,
)
from repro.datasets.gold import GoldMapping
from repro.model.element import SchemaElement


class TestDegenerateSchemas:
    def test_single_leaf_schemas(self):
        source = schema_from_tree("S", {"x": "integer"})
        target = schema_from_tree("T", {"x": "integer"})
        result = CupidMatcher().match(source, target)
        assert ("S.x", "T.x") in result.leaf_mapping.path_pairs()

    def test_empty_schemas(self):
        from repro.model.schema import Schema

        source = Schema("S")
        target = Schema("T")
        result = CupidMatcher().match(source, target)
        assert len(result.leaf_mapping) <= 1  # only the roots exist

    def test_empty_vs_populated(self):
        from repro.model.schema import Schema

        source = Schema("S")
        target = schema_from_tree("T", {"A": {"x": "int", "y": "int"}})
        result = CupidMatcher().match(source, target)
        # Nothing sensible to map; must not crash.
        assert len(result.leaf_mapping) <= 1

    def test_disjoint_vocabularies(self):
        source = schema_from_tree(
            "S", {"Zorp": {"Fleeb": "integer", "Quux": "binary"}}
        )
        target = schema_from_tree(
            "T", {"Gronk": {"Blarg": "date", "Wibble": "boolean"}}
        )
        result = CupidMatcher(thesaurus=empty_thesaurus()).match(source, target)
        for element in result.leaf_mapping:
            assert element.similarity >= 0.5  # only threshold survivors

    def test_very_deep_chain(self):
        spec: dict = {"leaf": "integer"}
        for level in range(15):
            spec = {f"L{level}": spec}
        source = schema_from_tree("S", spec)
        target = schema_from_tree("T", spec)
        result = CupidMatcher().match(source, target)
        leaf_pairs = result.leaf_mapping.path_pairs()
        assert len(leaf_pairs) == 1

    def test_wide_fanout(self):
        spec = {"T": {f"col{i}": "integer" for i in range(60)}}
        source = schema_from_tree("S", spec)
        target = schema_from_tree("T2", spec)
        result = CupidMatcher().match(source, target)
        # Same-named columns all map to themselves.
        same = [
            e for e in result.leaf_mapping
            if e.source_name == e.target_name
        ]
        assert len(same) == 60

    def test_all_optional_leaves(self):
        builder_s = SchemaBuilder("S")
        a = builder_s.add_child(builder_s.root, "A")
        builder_s.add_leaf(a, "x", "int", optional=True)
        builder_s.add_leaf(a, "y", "int", optional=True)
        builder_t = SchemaBuilder("T")
        b = builder_t.add_child(builder_t.root, "A")
        builder_t.add_leaf(b, "x", "int", optional=True)
        result = CupidMatcher().match(builder_s.schema, builder_t.schema)
        assert ("S.A.x", "T.A.x") in result.leaf_mapping.path_pairs()


class TestAdversarialNames:
    def test_unicode_names(self):
        source = schema_from_tree("S", {"Bestellung": {"Menge": "integer"}})
        target = schema_from_tree("T", {"Bestellung": {"Menge": "integer"}})
        result = CupidMatcher().match(source, target)
        assert ("S.Bestellung.Menge", "T.Bestellung.Menge") in (
            result.leaf_mapping.path_pairs()
        )

    def test_stopword_only_names(self):
        """Names made purely of articles/prepositions normalize to
        nothing comparable; matching must degrade, not crash."""
        source = schema_from_tree("S", {"OfThe": {"AndOr": "integer"}})
        target = schema_from_tree("T", {"InOn": {"ToFor": "integer"}})
        result = CupidMatcher().match(source, target)
        assert isinstance(len(result.leaf_mapping), int)

    def test_numeric_names(self):
        source = schema_from_tree("S", {"T2024": {"Q1": "money", "Q2": "money"}})
        target = schema_from_tree("T", {"T2024": {"Q1": "money", "Q2": "money"}})
        result = CupidMatcher().match(source, target)
        pairs = result.leaf_mapping.path_pairs()
        assert ("S.T2024.Q1", "T.T2024.Q1") in pairs

    def test_identical_sibling_names(self):
        """Two same-named siblings (legal: names need not be unique)."""
        builder = SchemaBuilder("S")
        a = builder.add_child(builder.root, "A")
        builder.add_leaf(a, "value", "integer")
        b = builder.add_child(builder.root, "B")
        builder.add_leaf(b, "value", "string")
        target = schema_from_tree(
            "T",
            {"A": {"value": "integer"}, "B": {"value": "string"}},
        )
        result = CupidMatcher().match(builder.schema, target)
        pairs = result.leaf_mapping.path_pairs()
        assert ("S.A.value", "T.A.value") in pairs
        assert ("S.B.value", "T.B.value") in pairs

    def test_extremely_long_name(self):
        long_name = "Very" * 50 + "LongColumnName"
        source = schema_from_tree("S", {"A": {long_name: "integer"}})
        target = schema_from_tree("T", {"A": {long_name: "integer"}})
        result = CupidMatcher().match(source, target)
        assert len(result.leaf_mapping) == 1


class TestAdversarialThesaurus:
    def test_conflicting_strengths_last_wins(self):
        from repro import Thesaurus

        thesaurus = Thesaurus()
        thesaurus.add_synonym("a1", "b1", 0.3)
        thesaurus.add_synonym("a1", "b1", 0.9)
        assert thesaurus.relatedness("a1", "b1") == 0.9

    def test_expansion_to_stopwords_only(self):
        """An abbreviation that expands to pure stopwords leaves the
        element with no comparable tokens."""
        from repro import Thesaurus
        from repro.linguistic.normalizer import Normalizer

        thesaurus = Thesaurus()
        thesaurus.add_stopwords(["of", "the"])
        thesaurus.add_abbreviation("ot", ["of", "the"])
        normalized = Normalizer(thesaurus).normalize("OT")
        assert normalized.comparable_tokens() == []

    def test_self_expanding_abbreviation(self):
        """An abbreviation expanding to itself must not loop."""
        from repro import Thesaurus
        from repro.linguistic.normalizer import Normalizer

        thesaurus = Thesaurus()
        thesaurus.add_abbreviation("qty", ["qty"])
        normalized = Normalizer(thesaurus).normalize("qty")
        assert [t.text for t in normalized.tokens] == ["qty"]


class TestGoldEdgeCases:
    def test_empty_gold(self):
        from repro.eval.metrics import evaluate_mapping
        from repro.mapping.mapping import Mapping

        quality = evaluate_mapping(Mapping("S", "T"), GoldMapping())
        assert quality.recall == 0.0
        assert quality.precision == 0.0

    def test_gold_target_recall_empty(self):
        from repro.mapping.mapping import Mapping

        assert GoldMapping().target_recall(Mapping("S", "T")) == 0.0


class TestConfigInteractions:
    def test_extreme_thresholds_still_run(self, tiny_pair):
        source, target = tiny_pair
        config = CupidConfig(
            thaccept=0.95, thhigh=0.96, thlow=0.01, cinc=1.01, cdec=0.99
        )
        result = CupidMatcher(config=config).match(source, target)
        for element in result.leaf_mapping:
            assert element.similarity >= 0.95

    def test_zero_wstruct_is_pure_linguistic(self, tiny_pair):
        source, target = tiny_pair
        config = CupidConfig(wstruct=0.0, wstruct_leaf=0.0)
        result = CupidMatcher(config=config).match(source, target)
        qty = result.source_tree.node_for_path("Order", "Qty")
        quantity = result.target_tree.node_for_path("Order", "Quantity")
        sims = result.treematch_result.sims
        assert sims.wsim(qty, quantity) == pytest.approx(
            sims.lsim(qty, quantity)
        )

    def test_full_wstruct_is_pure_structural(self, tiny_pair):
        source, target = tiny_pair
        config = CupidConfig(wstruct=1.0, wstruct_leaf=1.0)
        result = CupidMatcher(config=config).match(source, target)
        qty = result.source_tree.node_for_path("Order", "Qty")
        quantity = result.target_tree.node_for_path("Order", "Quantity")
        sims = result.treematch_result.sims
        assert sims.wsim(qty, quantity) == pytest.approx(
            sims.ssim(qty, quantity)
        )
