"""Tests for the XML schema and OO class-definition importers."""

import pytest

from repro.exceptions import OoModelParseError, XmlSchemaParseError
from repro.io.oo_model import parse_oo_model
from repro.io.xml_schema import parse_xml_schema
from repro.model.datatypes import DataType
from repro.model.element import ElementKind
from repro.tree.construction import construct_schema_tree

_XML = """
<schema name="PurchaseOrder">
  <complexType name="Address">
    <attribute name="Street" type="string"/>
    <attribute name="City" type="string"/>
  </complexType>
  <element name="DeliverTo" type="Address"/>
  <element name="InvoiceTo" type="Address"/>
  <element name="Items">
    <attribute name="itemCount" type="integer"/>
    <element name="Item">
      <attribute name="Quantity" type="integer"/>
      <attribute name="UnitOfMeasure" type="string" optional="true"/>
    </element>
  </element>
</schema>
"""


class TestXmlImporter:
    def test_schema_name(self):
        assert parse_xml_schema(_XML).name == "PurchaseOrder"

    def test_elements_and_attributes(self):
        schema = parse_xml_schema(_XML)
        items = schema.element_named("Items")
        assert items.kind is ElementKind.XML_ELEMENT
        count = schema.element_named("itemCount")
        assert count.kind is ElementKind.XML_ATTRIBUTE
        assert count.data_type is DataType.INTEGER

    def test_optional_attribute(self):
        schema = parse_xml_schema(_XML)
        assert schema.element_named("UnitOfMeasure").optional
        assert not schema.element_named("Quantity").optional

    def test_min_occurs_zero_means_optional(self):
        xml = """
        <schema name="S">
          <element name="A"><attribute name="x" minOccurs="0"/></element>
        </schema>
        """
        schema = parse_xml_schema(xml)
        assert schema.element_named("x").optional

    def test_complex_type_shared(self):
        schema = parse_xml_schema(_XML)
        address = schema.element_named("Address")
        assert address.not_instantiated
        deliver = schema.element_named("DeliverTo")
        assert schema.derived_bases(deliver) == [address]

    def test_type_substitution_through_tree(self):
        schema = parse_xml_schema(_XML)
        tree = construct_schema_tree(schema)
        paths = {n.path_string() for n in tree.nodes()}
        assert "PurchaseOrder.DeliverTo.Street" in paths
        assert "PurchaseOrder.InvoiceTo.Street" in paths

    def test_simple_typed_element_is_leaf(self):
        xml = """
        <schema name="S">
          <element name="A"><element name="x" type="integer"/></element>
        </schema>
        """
        schema = parse_xml_schema(xml)
        assert schema.element_named("x").data_type is DataType.INTEGER

    def test_key_elements_not_instantiated(self):
        xml = """
        <schema name="S">
          <element name="A">
            <attribute name="id" type="id"/>
            <key name="A_key"/>
          </element>
        </schema>
        """
        schema = parse_xml_schema(xml)
        key = schema.element_named("A_key")
        assert key.kind is ElementKind.KEY
        assert key.not_instantiated

    @pytest.mark.parametrize(
        "xml",
        [
            "not xml at all <",
            "<wrong name='S'/>",
            "<schema/>",
            "<schema name='S'><element/></schema>",
            "<schema name='S'><element name='A' type='Ghost'><element name='x'/></element></schema>",
            "<schema name='S'><unknown name='x'/></schema>",
            "<schema name='S'><complexType name='T'/><complexType name='T'/></schema>",
        ],
    )
    def test_malformed_inputs_raise(self, xml):
        with pytest.raises(XmlSchemaParseError):
            parse_xml_schema(xml)


_OO = """
class PurchaseOrder (OrderNumber: integer (key),
                     ProductName: string,
                     ShippingAddress: Address,
                     BillingAddress: Address)
class Address (Name: string, Street: string, City: string)
"""


class TestOoImporter:
    def test_classes_under_root(self):
        schema = parse_oo_model(_OO, "S")
        po = schema.element_named("PurchaseOrder")
        assert po.kind is ElementKind.CLASS

    def test_scalar_attributes_typed(self):
        schema = parse_oo_model(_OO, "S")
        assert schema.element_named("OrderNumber").data_type is DataType.INTEGER
        assert schema.element_named("OrderNumber").is_key

    def test_class_typed_attribute_derives(self):
        schema = parse_oo_model(_OO, "S")
        shipping = schema.element_named("ShippingAddress")
        address = schema.element_named("Address")
        assert schema.derived_bases(shipping) == [address]
        assert address.not_instantiated

    def test_optional_flag(self):
        schema = parse_oo_model(
            "class C (x: integer (optional))", "S"
        )
        assert schema.element_named("x").optional

    def test_tree_expansion_gives_context_paths(self):
        schema = parse_oo_model(_OO, "S")
        tree = construct_schema_tree(schema)
        paths = {n.path_string() for n in tree.nodes()}
        assert "S.PurchaseOrder.ShippingAddress.Street" in paths
        assert "S.PurchaseOrder.BillingAddress.Street" in paths

    @pytest.mark.parametrize(
        "text",
        [
            "",
            "not a class at all",
            "class C (???)",
            "class C (x: integer) class C (y: integer)",
        ],
    )
    def test_malformed_inputs_raise(self, text):
        with pytest.raises(OoModelParseError):
            parse_oo_model(text, "S")
