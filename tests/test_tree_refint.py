"""Tests for join-view augmentation (Section 8.3, Figures 5–6)."""

import pytest

from repro.io.sql_ddl import parse_sql_ddl
from repro.tree.construction import construct_schema_tree
from repro.tree.refint import augment_with_join_views

_DDL = """
CREATE TABLE Customer (
  CustomerID int PRIMARY KEY,
  Name varchar(40),
  Address varchar(60)
);
CREATE TABLE PurchaseOrder (
  OrderID int PRIMARY KEY,
  ProductName varchar(40),
  CustomerID int REFERENCES Customer(CustomerID)
);
"""


@pytest.fixture
def augmented_tree():
    schema = parse_sql_ddl(_DDL, "Orders")
    tree = construct_schema_tree(schema)
    added = augment_with_join_views(tree)
    return tree, added


class TestJoinViews:
    def test_one_join_view_per_foreign_key(self, augmented_tree):
        tree, added = augmented_tree
        joins = [n for n in added if n.is_join_view]
        assert len(joins) == 1
        assert "fk" in joins[0].name

    def test_join_children_are_columns_of_both_tables(self, augmented_tree):
        """Figure 6: 'the join view node has as its children the columns
        from both the tables'."""
        tree, added = augmented_tree
        join = [n for n in added if n.is_join_view][0]
        names = {c.name for c in join.children}
        assert {"OrderID", "ProductName", "CustomerID", "Name", "Address"} <= names

    def test_join_children_shared_not_copied(self, augmented_tree):
        """The children ARE the table's nodes, so ssim increases on the
        join view propagate to the underlying columns."""
        tree, added = augmented_tree
        join = [n for n in added if n.is_join_view][0]
        customer_name = tree.node_for_path("Customer", "Name")
        assert customer_name in join.children

    def test_join_parent_is_common_ancestor(self, augmented_tree):
        tree, added = augmented_tree
        join = [n for n in added if n.is_join_view][0]
        assert join.parent is tree.root

    def test_postorder_visits_join_after_tables(self, augmented_tree):
        """Section 8.3: compare the RefInt nodes after the table nodes."""
        tree, _ = augmented_tree
        order = [n.name for n in tree.postorder()]
        join_index = next(
            i for i, name in enumerate(order) if "fk" in name
        )
        assert order.index("Customer") < join_index
        assert order.index("PurchaseOrder") < join_index

    def test_leaves_deduplicated_at_root(self, augmented_tree):
        """Shared children must not double-count root leaves."""
        tree, _ = augmented_tree
        leaf_ids = [n.node_id for n in tree.root.leaves()]
        assert len(leaf_ids) == len(set(leaf_ids))
        assert len(leaf_ids) == 6  # 3 Customer + 3 PurchaseOrder columns


class TestSelfReference:
    def test_self_referencing_fk_skipped(self):
        ddl = """
        CREATE TABLE Employee (
          EmployeeID int PRIMARY KEY,
          ManagerID int REFERENCES Employee(EmployeeID)
        );
        """
        schema = parse_sql_ddl(ddl, "S")
        tree = construct_schema_tree(schema)
        added = augment_with_join_views(tree)
        assert added == []


class TestViews:
    def test_view_node_groups_members(self):
        ddl = _DDL + (
            "CREATE VIEW CustomerOrders AS "
            "SELECT Customer.Name, PurchaseOrder.OrderID "
            "FROM Customer, PurchaseOrder;"
        )
        schema = parse_sql_ddl(ddl, "S")
        tree = construct_schema_tree(schema)
        added = augment_with_join_views(tree)
        view_nodes = [n for n in added if n.name == "CustomerOrders"]
        assert len(view_nodes) == 1
        assert {c.name for c in view_nodes[0].children} == {"Name", "OrderID"}
