"""Tests for schema-tree construction (Figure 4) and the tree/DAG API."""

import pytest

from repro.exceptions import CyclicSchemaError
from repro.model.builder import SchemaBuilder, schema_from_tree
from repro.model.element import ElementKind, SchemaElement
from repro.tree.construction import construct_schema_tree
from repro.tree.lazy import construct_schema_tree_lazy
from repro.tree.schema_tree import SchemaTreeNode


@pytest.fixture
def shared_type_schema():
    """PurchaseOrder with Address shared by DeliverTo and InvoiceTo."""
    builder = SchemaBuilder("PurchaseOrder")
    address = builder.add_shared_type("Address")
    builder.add_leaf(address, "Street", "string")
    builder.add_leaf(address, "City", "string")
    deliver = builder.add_child(builder.root, "DeliverTo")
    invoice = builder.add_child(builder.root, "InvoiceTo")
    builder.derive_from(deliver, address)
    builder.derive_from(invoice, address)
    return builder.schema


class TestBasicConstruction:
    def test_plain_tree_mirrors_containment(self):
        schema = schema_from_tree("S", {"A": {"x": "int"}, "B": {"y": "int"}})
        tree = construct_schema_tree(schema)
        assert [n.path_string() for n in tree.nodes()] == [
            "S", "S.A", "S.A.x", "S.B", "S.B.y",
        ]

    def test_leaves(self):
        schema = schema_from_tree("S", {"A": {"x": "int", "y": "int"}})
        tree = construct_schema_tree(schema)
        assert [n.name for n in tree.leaves()] == ["x", "y"]

    def test_not_instantiated_skipped(self):
        schema = schema_from_tree("S", {"A": {"x": "int"}})
        key = SchemaElement(
            name="A_pk", kind=ElementKind.KEY, not_instantiated=True
        )
        schema.add_element(key)
        schema.add_containment(schema.element_named("A"), key)
        tree = construct_schema_tree(schema)
        assert all(n.name != "A_pk" for n in tree.nodes())

    def test_postorder_children_before_parents(self):
        schema = schema_from_tree("S", {"A": {"x": "int", "y": "int"}})
        tree = construct_schema_tree(schema)
        order = [n.name for n in tree.postorder()]
        assert order.index("x") < order.index("A")
        assert order.index("A") < order.index("S")

    def test_postorder_is_unique_for_trees(self):
        schema = schema_from_tree(
            "S", {"A": {"x": "int"}, "B": {"y": "int"}}
        )
        tree = construct_schema_tree(schema)
        assert [n.name for n in tree.postorder()] == ["x", "A", "y", "B", "S"]


class TestTypeSubstitution:
    def test_shared_type_expanded_per_context(self, shared_type_schema):
        """Section 8.2: each IsDerivedFrom context gets a private copy."""
        tree = construct_schema_tree(shared_type_schema)
        paths = {n.path_string() for n in tree.nodes()}
        assert "PurchaseOrder.DeliverTo.Street" in paths
        assert "PurchaseOrder.InvoiceTo.Street" in paths

    def test_copies_share_underlying_elements(self, shared_type_schema):
        tree = construct_schema_tree(shared_type_schema)
        deliver_street = tree.node_for_path("DeliverTo", "Street")
        invoice_street = tree.node_for_path("InvoiceTo", "Street")
        assert deliver_street is not invoice_street
        assert deliver_street.element is invoice_street.element

    def test_type_declaration_not_materialized_standalone(
        self, shared_type_schema
    ):
        tree = construct_schema_tree(shared_type_schema)
        top_level = {c.name for c in tree.root.children}
        assert top_level == {"DeliverTo", "InvoiceTo"}

    def test_own_children_plus_type_members(self):
        builder = SchemaBuilder("S")
        base = builder.add_shared_type("Base")
        builder.add_leaf(base, "inherited", "int")
        user = builder.add_child(builder.root, "User")
        builder.add_leaf(user, "own", "int")
        builder.derive_from(user, base)
        tree = construct_schema_tree(builder.schema)
        user_node = tree.node_for_path("User")
        assert {c.name for c in user_node.children} == {"own", "inherited"}

    def test_nested_derivation(self):
        """A type deriving from another type expands transitively."""
        builder = SchemaBuilder("S")
        base = builder.add_shared_type("Base")
        builder.add_leaf(base, "a", "int")
        mid = builder.add_shared_type("Mid")
        builder.add_leaf(mid, "b", "int")
        builder.schema.add_is_derived_from(mid, base)
        user = builder.add_child(builder.root, "User")
        builder.derive_from(user, mid)
        tree = construct_schema_tree(builder.schema)
        names = {c.name for c in tree.node_for_path("User").children}
        assert names == {"a", "b"}

    def test_recursive_type_raises(self):
        """Section 8.2: cyclic schemas are unsupported, fail loudly."""
        builder = SchemaBuilder("S")
        a = builder.add_shared_type("A")
        b = builder.add_shared_type("B")
        builder.schema.add_is_derived_from(a, b)
        builder.schema.add_is_derived_from(b, a)
        user = builder.add_child(builder.root, "User")
        builder.derive_from(user, a)
        with pytest.raises(CyclicSchemaError):
            construct_schema_tree(builder.schema)


class TestNodeApi:
    def test_path(self):
        schema = schema_from_tree("S", {"A": {"x": "int"}})
        tree = construct_schema_tree(schema)
        assert tree.node_for_path("A", "x").path() == ("S", "A", "x")

    def test_leaf_count_cached_consistently(self):
        schema = schema_from_tree("S", {"A": {"x": "int", "y": "int"}})
        tree = construct_schema_tree(schema)
        node = tree.node_for_path("A")
        assert node.leaf_count() == 2
        assert node.leaf_count() == 2

    def test_subtree_depth(self):
        schema = schema_from_tree("S", {"A": {"B": {"x": "int"}}})
        tree = construct_schema_tree(schema)
        assert tree.root.subtree_depth() == 3
        assert tree.node_for_path("A", "B", "x").subtree_depth() == 0

    def test_node_for_path_missing_raises(self):
        schema = schema_from_tree("S", {"A": {"x": "int"}})
        tree = construct_schema_tree(schema)
        with pytest.raises(KeyError):
            tree.node_for_path("Nope")

    def test_add_child_rejects_reparenting(self):
        schema = schema_from_tree("S", {"A": {"x": "int"}})
        tree = construct_schema_tree(schema)
        x = tree.node_for_path("A", "x")
        with pytest.raises(ValueError):
            tree.root.add_child(x)


class TestOptionality:
    def test_required_flags(self):
        builder = SchemaBuilder("S")
        a = builder.add_child(builder.root, "A")
        builder.add_leaf(a, "req", "int")
        builder.add_leaf(a, "opt", "int", optional=True)
        tree = construct_schema_tree(builder.schema)
        flags = tree.node_for_path("A").leaves_with_required_flag()
        by_name = {node.name: required for node, required in flags.items()}
        assert by_name == {"req": True, "opt": False}

    def test_optional_inner_node_makes_leaves_optional(self):
        """'A leaf is optional if it has at least one optional node on
        each path from n to the leaf.'"""
        builder = SchemaBuilder("S")
        a = builder.add_child(builder.root, "A", optional=True)
        builder.add_leaf(a, "x", "int")
        tree = construct_schema_tree(builder.schema)
        flags = tree.root.leaves_with_required_flag()
        by_name = {node.name: required for node, required in flags.items()}
        assert by_name["x"] is False

    def test_optionality_relative_to_start_node(self):
        """The optional inner node itself is context when starting at it."""
        builder = SchemaBuilder("S")
        a = builder.add_child(builder.root, "A", optional=True)
        builder.add_leaf(a, "x", "int")
        tree = construct_schema_tree(builder.schema)
        flags = tree.node_for_path("A").leaves_with_required_flag()
        by_name = {node.name: required for node, required in flags.items()}
        assert by_name["x"] is True

    def test_mutation_without_reindex_stays_correct(self):
        """The stale-leaf-cache bug class is gone by construction:
        mutating a tree unindexes the touched ancestry, so accessors
        answer through the DFS fallback — correctly — even when nobody
        remembers to call reindex()."""
        builder = SchemaBuilder("S")
        a = builder.add_child(builder.root, "A")
        builder.add_leaf(a, "x", "int")
        tree = construct_schema_tree(builder.schema)
        first = tree.root.leaves_with_required_flag()
        assert tree.root.leaves_with_required_flag() == first

        from repro.model.element import SchemaElement
        from repro.tree.schema_tree import SchemaTreeNode

        # Warm accessors, then mutate WITHOUT any reindex/invalidate
        # call: the new leaf must appear everywhere regardless.
        extra = SchemaTreeNode(SchemaElement(name="y"))
        tree.node_for_path("A").add_child(extra)
        assert tree.root.pre == -1  # ancestry unindexed
        flags = tree.root.leaves_with_required_flag()
        assert extra in flags
        assert extra in tree.root.leaves()
        assert tree.root.leaf_count() == 2

        # reindex() restores the interval fast path with the same
        # answers.
        tree.reindex()
        assert tree.root.pre == 0
        assert tree.root.leaves_with_required_flag() == flags
        assert extra in tree.root.leaves()


class TestLazyConstruction:
    def test_lazy_shares_subtrees(self, shared_type_schema):
        tree = construct_schema_tree_lazy(shared_type_schema)
        deliver = tree.node_for_path("DeliverTo")
        invoice = tree.node_for_path("InvoiceTo")
        deliver_street = [c for c in deliver.children if c.name == "Street"][0]
        invoice_street = [c for c in invoice.children if c.name == "Street"][0]
        assert deliver_street is invoice_street  # physically shared

    def test_lazy_has_fewer_nodes_than_eager(self, shared_type_schema):
        eager = construct_schema_tree(shared_type_schema)
        lazy = construct_schema_tree_lazy(shared_type_schema)
        assert len(lazy) < len(eager)

    def test_lazy_same_leaf_multiset_names(self, shared_type_schema):
        eager = construct_schema_tree(shared_type_schema)
        lazy = construct_schema_tree_lazy(shared_type_schema)
        assert {n.name for n in lazy.leaves()} == {
            n.name for n in eager.leaves()
        }

    def test_lazy_plain_tree_identical_shape(self):
        schema = schema_from_tree("S", {"A": {"x": "int"}, "B": {"y": "int"}})
        eager = construct_schema_tree(schema)
        lazy = construct_schema_tree_lazy(schema)
        assert [n.path_string() for n in eager.nodes()] == [
            n.path_string() for n in lazy.nodes()
        ]

    def test_lazy_detects_cycles(self):
        builder = SchemaBuilder("S")
        a = builder.add_shared_type("A")
        b = builder.add_shared_type("B")
        builder.schema.add_is_derived_from(a, b)
        builder.schema.add_is_derived_from(b, a)
        user = builder.add_child(builder.root, "User")
        builder.derive_from(user, a)
        with pytest.raises(CyclicSchemaError):
            construct_schema_tree_lazy(builder.schema)
