"""Tests for the synthetic schema generator and perturbations."""

import pytest

from repro import CupidMatcher
from repro.datasets.generator import PerturbationConfig, SchemaGenerator
from repro.eval.metrics import evaluate_mapping
from repro.model.validation import validate_schema


class TestGeneration:
    def test_leaf_count_respected(self):
        schema = SchemaGenerator(seed=1).generate(n_leaves=25)
        leaves = schema.containment_leaves(schema.root)
        atomic = [l for l in leaves if l.is_atomic]
        assert len(atomic) == 25

    def test_deterministic_with_seed(self):
        a = SchemaGenerator(seed=42).generate(n_leaves=15)
        b = SchemaGenerator(seed=42).generate(n_leaves=15)
        assert [e.name for e in a.elements] == [e.name for e in b.elements]

    def test_different_seeds_differ(self):
        a = SchemaGenerator(seed=1).generate(n_leaves=15)
        b = SchemaGenerator(seed=2).generate(n_leaves=15)
        assert [e.name for e in a.elements] != [e.name for e in b.elements]

    def test_generated_schema_valid(self):
        schema = SchemaGenerator(seed=3).generate(n_leaves=40, max_depth=4)
        assert validate_schema(schema) == []

    def test_depth_bounded(self):
        schema = SchemaGenerator(seed=4).generate(n_leaves=50, max_depth=2)
        for leaf in schema.containment_leaves(schema.root):
            assert schema.containment_depth(leaf) <= 3

    def test_invalid_leaf_count_rejected(self):
        with pytest.raises(ValueError):
            SchemaGenerator().generate(n_leaves=0)


class TestNameRepetition:
    def test_zero_repetition_leaves_stream_untouched(self):
        """The default must reproduce pre-knob schemas bit-for-bit
        (seeded workloads in benchmarks and tests depend on it)."""
        a = SchemaGenerator(seed=42).generate(n_leaves=30)
        b = SchemaGenerator(seed=42).generate(n_leaves=30, name_repetition=0.0)
        assert [e.name for e in a.elements] == [e.name for e in b.elements]

    def test_repetition_creates_duplicates(self):
        schema = SchemaGenerator(seed=11).generate(
            n_leaves=60, name_repetition=0.8
        )
        names = [e.name for e in schema.elements if e.name]
        assert len(set(names)) < len(names) * 0.7

    def test_repetition_deterministic(self):
        a = SchemaGenerator(seed=9).generate(n_leaves=40, name_repetition=0.5)
        b = SchemaGenerator(seed=9).generate(n_leaves=40, name_repetition=0.5)
        assert [e.name for e in a.elements] == [e.name for e in b.elements]

    def test_no_duplicate_siblings(self):
        """Paths must stay unambiguous: reuse never collides under one
        parent."""
        schema = SchemaGenerator(seed=13).generate(
            n_leaves=80, name_repetition=0.9
        )
        assert validate_schema(schema) == []
        for element in schema.elements:
            children = [
                c.name for c in schema.contained_children(element)
            ]
            assert len(children) == len(set(children))

    def test_invalid_repetition_rejected(self):
        with pytest.raises(ValueError):
            SchemaGenerator().generate(n_leaves=5, name_repetition=1.5)

    def test_repetition_workload_matches_and_perturbs(self):
        generator = SchemaGenerator(seed=7)
        schema = generator.generate(n_leaves=40, name_repetition=0.7)
        copy, gold = generator.perturb(schema)
        assert len(gold) > 0
        result = CupidMatcher().match(schema, copy)
        assert len(result.leaf_mapping) > 0


class TestPerturbation:
    def test_identity_perturbation(self):
        generator = SchemaGenerator(seed=5)
        schema = generator.generate(n_leaves=20)
        config = PerturbationConfig(
            abbreviate=0, synonym=0, prefix_suffix=0, retype=0
        )
        copy, gold = generator.perturb(schema, config)
        assert len(gold) == 20
        # Identical names: the gold pairs name identical paths.
        for source, target in gold:
            assert source[-1] == target[-1]

    def test_gold_covers_all_surviving_leaves(self):
        generator = SchemaGenerator(seed=6)
        schema = generator.generate(n_leaves=30)
        copy, gold = generator.perturb(schema)
        copy_leaves = [
            l for l in copy.containment_leaves(copy.root) if l.is_atomic
        ]
        assert len(gold) == len(copy_leaves)

    def test_drop_leaf(self):
        generator = SchemaGenerator(seed=7)
        schema = generator.generate(n_leaves=30)
        copy, gold = generator.perturb(
            schema, PerturbationConfig(drop_leaf=1.0)
        )
        assert len(gold) == 0

    def test_flatten_removes_inner_levels(self):
        generator = SchemaGenerator(seed=8)
        schema = generator.generate(n_leaves=30, max_depth=4)
        copy, _ = generator.perturb(
            schema, PerturbationConfig(flatten=1.0)
        )
        # Everything hangs directly off the root.
        for leaf in copy.containment_leaves(copy.root):
            assert copy.containment_depth(leaf) == 1

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            PerturbationConfig(abbreviate=1.5).validate()

    def test_perturbed_schema_still_matches_well(self):
        """End-to-end sanity: Cupid recovers most of a light rename."""
        generator = SchemaGenerator(seed=9)
        schema = generator.generate(n_leaves=15, max_depth=2)
        copy, gold = generator.perturb(
            schema,
            PerturbationConfig(abbreviate=0.4, synonym=0.3),
        )
        result = CupidMatcher().match(schema, copy)
        quality = evaluate_mapping(result.leaf_mapping, gold)
        assert quality.recall >= 0.8
