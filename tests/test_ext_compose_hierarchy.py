"""Tests for mapping composition/inversion and hierarchical mappings."""

import pytest

from repro import CupidMatcher
from repro.exceptions import MappingError
from repro.mapping.compose import compose_mappings, invert_mapping
from repro.mapping.hierarchy import build_hierarchical_mapping
from repro.mapping.mapping import Mapping, MappingElement


def _mapping(source_name, target_name, *pairs):
    mapping = Mapping(source_name, target_name)
    for source, target, score in pairs:
        mapping.add(
            MappingElement(
                source_path=tuple(source.split(".")),
                target_path=tuple(target.split(".")),
                similarity=score,
            )
        )
    return mapping


class TestInvert:
    def test_swap(self):
        ab = _mapping("A", "B", ("A.x", "B.y", 0.8))
        ba = invert_mapping(ab)
        assert ba.source_schema_name == "B"
        assert ("B.y", "A.x") in ba.path_pairs()

    def test_double_inversion_identity(self):
        ab = _mapping("A", "B", ("A.x", "B.y", 0.8), ("A.z", "B.w", 0.6))
        assert invert_mapping(invert_mapping(ab)).path_pairs() == ab.path_pairs()


class TestCompose:
    def test_chain(self):
        ab = _mapping("A", "B", ("A.x", "B.y", 0.8))
        bc = _mapping("B", "C", ("B.y", "C.z", 0.9))
        ac = compose_mappings(ab, bc)
        assert ac.source_schema_name == "A"
        assert ac.target_schema_name == "C"
        element = list(ac)[0]
        assert element.path_pair() == ("A.x", "C.z")
        assert element.similarity == pytest.approx(0.72)

    def test_unjoinable_elements_dropped(self):
        ab = _mapping("A", "B", ("A.x", "B.y", 0.8))
        bc = _mapping("B", "C", ("B.other", "C.z", 0.9))
        assert len(compose_mappings(ab, bc)) == 0

    def test_multiple_intermediates_keep_strongest(self):
        ab = _mapping(
            "A", "B", ("A.x", "B.y1", 0.9), ("A.x", "B.y2", 0.5)
        )
        bc = _mapping(
            "B", "C", ("B.y1", "C.z", 0.5), ("B.y2", "C.z", 0.9)
        )
        ac = compose_mappings(ab, bc)
        assert len(ac) == 1
        assert list(ac)[0].similarity == pytest.approx(0.45)

    def test_min_similarity_filter(self):
        ab = _mapping("A", "B", ("A.x", "B.y", 0.5))
        bc = _mapping("B", "C", ("B.y", "C.z", 0.5))
        assert len(compose_mappings(ab, bc, min_similarity=0.3)) == 0

    def test_schema_mismatch_raises(self):
        ab = _mapping("A", "B", ("A.x", "B.y", 0.8))
        cd = _mapping("C", "D", ("C.y", "D.z", 0.9))
        with pytest.raises(MappingError):
            compose_mappings(ab, cd)

    def test_compose_through_inversion(self):
        """A→B composed with invert(C→B) gives A→C — the reuse pattern
        for mapping both sources onto a shared mediated schema."""
        ab = _mapping("A", "B", ("A.x", "B.y", 0.8))
        cb = _mapping("C", "B", ("C.z", "B.y", 0.9))
        ac = compose_mappings(ab, invert_mapping(cb))
        assert ("A.x", "C.z") in ac.path_pairs()


class TestHierarchicalMapping:
    def test_nesting_from_figure2(self, figure2_result):
        hierarchy = build_hierarchical_mapping(
            figure2_result.nonleaf_mapping, figure2_result.leaf_mapping
        )
        # Everything that was in either flat mapping is in the forest.
        assert len(hierarchy) == len(figure2_result.leaf_mapping) + len(
            figure2_result.nonleaf_mapping
        )
        # The root pair contains the rest.
        root_node = hierarchy.find("PO", "PurchaseOrder")
        assert root_node is not None
        nested = list(root_node.iter_depth_first())
        assert len(nested) > 1

    def test_leaves_nest_under_their_parents(self, figure2_result):
        hierarchy = build_hierarchical_mapping(
            figure2_result.nonleaf_mapping, figure2_result.leaf_mapping
        )
        bill = hierarchy.find("PO.POBillTo", "PurchaseOrder.InvoiceTo")
        assert bill is not None
        child_pairs = {
            node.element.path_pair() for node in bill.iter_depth_first()
        }
        assert (
            "PO.POBillTo.City",
            "PurchaseOrder.InvoiceTo.Address.City",
        ) in child_pairs

    def test_render_is_indented(self, figure2_result):
        hierarchy = build_hierarchical_mapping(
            figure2_result.nonleaf_mapping, figure2_result.leaf_mapping
        )
        text = hierarchy.render()
        assert "  " in text  # at least one nested level
        assert "PO" in text

    def test_orphans_become_roots(self):
        leaf = _mapping("S", "T", ("S.A.x", "T.B.y", 0.7))
        hierarchy = build_hierarchical_mapping(Mapping("S", "T"), leaf)
        assert len(hierarchy.roots) == 1
