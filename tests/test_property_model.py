"""Property-based tests for model/tree invariants."""

import string

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datasets.generator import SchemaGenerator
from repro.io.json_io import schema_from_dict, schema_to_dict
from repro.model.validation import validate_schema
from repro.tree.construction import construct_schema_tree
from repro.tree.lazy import construct_schema_tree_lazy

_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestGeneratedSchemaInvariants:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_leaves=st.integers(min_value=1, max_value=40),
    )
    @_SETTINGS
    def test_generated_schemas_validate(self, seed, n_leaves):
        schema = SchemaGenerator(seed=seed).generate(n_leaves=n_leaves)
        assert validate_schema(schema) == []

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_leaves=st.integers(min_value=1, max_value=40),
    )
    @_SETTINGS
    def test_exact_leaf_count(self, seed, n_leaves):
        schema = SchemaGenerator(seed=seed).generate(n_leaves=n_leaves)
        atomic = [
            l for l in schema.containment_leaves(schema.root) if l.is_atomic
        ]
        assert len(atomic) == n_leaves


class TestTreeInvariants:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @_SETTINGS
    def test_tree_mirrors_containment(self, seed):
        schema = SchemaGenerator(seed=seed).generate(n_leaves=15)
        tree = construct_schema_tree(schema)
        # One tree node per instantiated element (no shared types here).
        instantiated = [
            e for e in schema.elements if not e.not_instantiated
        ]
        assert len(tree.nodes()) == len(instantiated)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @_SETTINGS
    def test_postorder_topological(self, seed):
        """Post-order always lists every child before its parent."""
        schema = SchemaGenerator(seed=seed).generate(n_leaves=15)
        tree = construct_schema_tree(schema)
        position = {
            node.node_id: i for i, node in enumerate(tree.postorder())
        }
        for node in tree.nodes():
            for child in node.children:
                assert position[child.node_id] < position[node.node_id]

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @_SETTINGS
    def test_leaf_counts_consistent(self, seed):
        schema = SchemaGenerator(seed=seed).generate(n_leaves=15)
        tree = construct_schema_tree(schema)
        for node in tree.nodes():
            if node.children:
                assert node.leaf_count() == sum(
                    # children may share leaves only in DAGs; plain
                    # generated trees must partition exactly.
                    child.leaf_count() for child in node.children
                )

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @_SETTINGS
    def test_lazy_equals_eager_without_shared_types(self, seed):
        schema = SchemaGenerator(seed=seed).generate(n_leaves=15)
        eager = construct_schema_tree(schema)
        lazy = construct_schema_tree_lazy(schema)
        assert [n.path_string() for n in eager.nodes()] == [
            n.path_string() for n in lazy.nodes()
        ]


class TestJsonRoundTripProperty:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @_SETTINGS
    def test_roundtrip_preserves_shape(self, seed):
        schema = SchemaGenerator(seed=seed).generate(n_leaves=12)
        rebuilt = schema_from_dict(schema_to_dict(schema))
        original_paths = {
            n.path_string()
            for n in construct_schema_tree(schema).nodes()
        }
        rebuilt_paths = {
            n.path_string()
            for n in construct_schema_tree(rebuilt).nodes()
        }
        assert original_paths == rebuilt_paths
