"""Tests for the mini SQL DDL importer."""

import pytest

from repro.exceptions import SqlDdlParseError
from repro.io.sql_ddl import parse_sql_ddl
from repro.model.datatypes import DataType
from repro.model.element import ElementKind
from repro.model.validation import validate_schema

_BASIC = """
CREATE TABLE Customers (
  CustomerID int PRIMARY KEY,
  CompanyName varchar(40) NOT NULL,
  PostalCode varchar(10)
);
"""


class TestTables:
    def test_table_under_root(self):
        schema = parse_sql_ddl(_BASIC, "DB")
        table = schema.element_named("Customers")
        assert table.kind is ElementKind.TABLE
        assert schema.container_of(table) is schema.root

    def test_columns_typed(self):
        schema = parse_sql_ddl(_BASIC, "DB")
        assert schema.element_named("CustomerID").data_type is DataType.INTEGER
        assert schema.element_named("CompanyName").data_type is DataType.STRING

    def test_nullability_maps_to_optional(self):
        schema = parse_sql_ddl(_BASIC, "DB")
        assert not schema.element_named("CompanyName").optional  # NOT NULL
        assert schema.element_named("PostalCode").optional
        assert not schema.element_named("CustomerID").optional  # PK

    def test_inline_primary_key(self):
        schema = parse_sql_ddl(_BASIC, "DB")
        assert schema.element_named("CustomerID").is_key
        keys = [e for e in schema.elements if e.kind is ElementKind.KEY]
        assert len(keys) == 1
        assert keys[0].not_instantiated

    def test_compound_primary_key(self):
        ddl = """
        CREATE TABLE Link (
          A int, B int,
          PRIMARY KEY (A, B)
        );
        """
        schema = parse_sql_ddl(ddl, "DB")
        key = [e for e in schema.elements if e.kind is ElementKind.KEY][0]
        assert {c.name for c in schema.aggregated_members(key)} == {"A", "B"}
        assert schema.element_named("A").is_key

    def test_validates_cleanly(self):
        schema = parse_sql_ddl(_BASIC, "DB")
        assert validate_schema(schema) == []

    def test_case_insensitive_keywords(self):
        schema = parse_sql_ddl(
            "create table t (x INT primary key);", "DB"
        )
        assert schema.element_named("x").is_key


class TestForeignKeys:
    _FK = _BASIC + """
    CREATE TABLE Orders (
      OrderID int PRIMARY KEY,
      CustomerID int REFERENCES Customers(CustomerID)
    );
    """

    def test_inline_references_create_refint(self):
        schema = parse_sql_ddl(self._FK, "DB")
        refints = schema.refint_elements()
        assert len(refints) == 1
        refint = refints[0]
        assert refint.not_instantiated
        sources = schema.aggregated_members(refint)
        assert [s.name for s in sources] == ["CustomerID"]
        targets = schema.reference_targets(refint)
        assert len(targets) == 1
        assert targets[0].kind is ElementKind.KEY

    def test_refint_contained_by_source_table(self):
        schema = parse_sql_ddl(self._FK, "DB")
        refint = schema.refint_elements()[0]
        assert schema.container_of(refint).name == "Orders"

    def test_table_level_foreign_key(self):
        ddl = _BASIC + """
        CREATE TABLE Orders (
          OrderID int PRIMARY KEY,
          CustID int,
          FOREIGN KEY (CustID) REFERENCES Customers (CustomerID)
        );
        """
        schema = parse_sql_ddl(ddl, "DB")
        assert len(schema.refint_elements()) == 1

    def test_named_constraint(self):
        ddl = _BASIC + """
        CREATE TABLE Orders (
          OrderID int PRIMARY KEY,
          CustID int,
          CONSTRAINT cust_fk FOREIGN KEY (CustID)
            REFERENCES Customers (CustomerID)
        );
        """
        schema = parse_sql_ddl(ddl, "DB")
        assert schema.refint_elements()[0].name == "cust_fk"

    def test_forward_reference_resolved(self):
        """FKs may reference tables declared later in the script."""
        ddl = """
        CREATE TABLE Orders (
          OrderID int PRIMARY KEY,
          CustomerID int REFERENCES Customers(CustomerID)
        );
        CREATE TABLE Customers (CustomerID int PRIMARY KEY);
        """
        schema = parse_sql_ddl(ddl, "DB")
        assert len(schema.refint_elements()) == 1

    def test_unknown_target_table_raises(self):
        ddl = """
        CREATE TABLE Orders (
          OrderID int PRIMARY KEY,
          CustomerID int REFERENCES Ghost(CustomerID)
        );
        """
        with pytest.raises(SqlDdlParseError):
            parse_sql_ddl(ddl, "DB")


class TestViews:
    def test_view_aggregates_columns(self):
        ddl = _BASIC + (
            "CREATE VIEW Summary AS SELECT CompanyName, PostalCode "
            "FROM Customers;"
        )
        schema = parse_sql_ddl(ddl, "DB")
        view = schema.element_named("Summary")
        assert view.kind is ElementKind.VIEW
        assert {m.name for m in schema.aggregated_members(view)} == {
            "CompanyName", "PostalCode",
        }

    def test_qualified_view_columns(self):
        ddl = _BASIC + (
            "CREATE VIEW V AS SELECT Customers.CompanyName FROM Customers;"
        )
        schema = parse_sql_ddl(ddl, "DB")
        view = schema.element_named("V")
        assert len(schema.aggregated_members(view)) == 1

    def test_view_unknown_column_raises(self):
        ddl = _BASIC + "CREATE VIEW V AS SELECT Ghost FROM Customers;"
        with pytest.raises(SqlDdlParseError):
            parse_sql_ddl(ddl, "DB")


class TestErrors:
    def test_unparseable_clause_raises(self):
        with pytest.raises(SqlDdlParseError):
            parse_sql_ddl("CREATE TABLE T (CHECK (x > 0) ???);", "DB")

    def test_unrecognized_statement_raises(self):
        with pytest.raises(SqlDdlParseError):
            parse_sql_ddl("DROP TABLE Customers;", "DB")

    def test_unknown_pk_column_raises(self):
        ddl = "CREATE TABLE T (x int, PRIMARY KEY (ghost));"
        with pytest.raises(SqlDdlParseError):
            parse_sql_ddl(ddl, "DB")

    def test_unknown_fk_column_raises(self):
        ddl = """
        CREATE TABLE A (x int PRIMARY KEY);
        CREATE TABLE B (
          y int,
          FOREIGN KEY (ghost) REFERENCES A (x)
        );
        """
        with pytest.raises(SqlDdlParseError):
            parse_sql_ddl(ddl, "DB")
