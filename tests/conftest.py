"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import CupidMatcher, builtin_thesaurus
from repro.config import CupidConfig
from repro.datasets.figure2 import figure2_po, figure2_purchase_order
from repro.linguistic.normalizer import Normalizer
from repro.model.builder import SchemaBuilder, schema_from_tree


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    """Seed-report hook for the randomized (fuzz/property) tests.

    Tests that derive their inputs from a seed record the reproducing
    parameters via ``record_property``; on failure this hook surfaces
    them as a report section, so a CI failure is one copy-paste away
    from a local repro.
    """
    outcome = yield
    report = outcome.get_result()
    if report.when == "call" and report.failed and item.user_properties:
        lines = [f"{key} = {value!r}" for key, value in item.user_properties]
        report.sections.append(
            ("randomized case — reproduce with", "\n".join(lines))
        )


@pytest.fixture
def thesaurus():
    return builtin_thesaurus()


@pytest.fixture
def normalizer(thesaurus):
    return Normalizer(thesaurus)


@pytest.fixture
def config():
    return CupidConfig()


@pytest.fixture
def po_schema():
    return figure2_po()


@pytest.fixture
def purchase_order_schema():
    return figure2_purchase_order()


@pytest.fixture
def figure2_result(po_schema, purchase_order_schema):
    """A full Cupid run on the Figure 2 running example."""
    return CupidMatcher().match(po_schema, purchase_order_schema)


@pytest.fixture
def tiny_pair():
    """A minimal source/target schema pair with one obvious match."""
    source = schema_from_tree(
        "Source", {"Order": {"Qty": "integer", "Price": "money"}}
    )
    target = schema_from_tree(
        "Target", {"Order": {"Quantity": "integer", "Cost": "money"}}
    )
    return source, target
