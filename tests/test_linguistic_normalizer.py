"""Tests for repro.linguistic.normalizer — the four Section 5.1 steps."""

import pytest

from repro.linguistic.tokens import TokenType


def _words(normalized):
    """Word tokens only (tagging appends concept-name tokens)."""
    return [
        t.text for t in normalized.tokens
        if t.token_type is not TokenType.CONCEPT
    ]


class TestExpansion:
    def test_paper_example_po_lines(self, normalizer):
        """'{PO, Lines} -> {Purchase, Order, Lines}' (Section 5.1)."""
        normalized = normalizer.normalize("POLines")
        assert _words(normalized) == ["purchase", "order", "lines"]

    def test_mixed_case_acronym_expands_whole_name(self, normalizer):
        """'UoM' must expand even though camel-splitting would break it."""
        normalized = normalizer.normalize("UoM")
        assert _words(normalized) == ["unit", "of", "measure"]

    def test_qty_expands(self, normalizer):
        assert _words(normalizer.normalize("Qty")) == ["quantity"]


class TestElimination:
    def test_prepositions_marked_ignored(self, normalizer):
        normalized = normalizer.normalize("UnitOfMeasure")
        of_token = [t for t in normalized.tokens if t.text == "of"][0]
        assert of_token.ignored
        assert of_token.token_type is TokenType.COMMON

    def test_ignored_tokens_still_present(self, normalizer):
        """Eliminated tokens are 'marked to be ignored', not removed."""
        normalized = normalizer.normalize("UnitOfMeasure")
        word_tokens = [
            t for t in normalized.tokens
            if t.token_type is not TokenType.CONCEPT
        ]
        assert len(word_tokens) == 3
        assert sum(1 for t in word_tokens if not t.ignored) == 2


class TestTagging:
    def test_money_concept_tagged(self, normalizer):
        """Section 5.1: elements with token Price get concept Money."""
        assert "money" in normalizer.normalize("UnitPrice").concepts
        assert "money" in normalizer.normalize("TotalCost").concepts

    def test_trigger_stays_content_concept_token_added(self, normalizer):
        """The trigger (price) stays a content token; the concept name
        (money) joins the token set as a CONCEPT token."""
        normalized = normalizer.normalize("UnitPrice")
        price = [t for t in normalized.tokens if t.text == "price"][0]
        assert price.token_type is TokenType.CONTENT
        money = [t for t in normalized.tokens if t.text == "money"]
        assert len(money) == 1
        assert money[0].token_type is TokenType.CONCEPT

    def test_shared_concept_links_different_words(
        self, normalizer, thesaurus, config
    ):
        """Price and Cost share the money concept token (Section 5.1)."""
        from repro.linguistic.name_similarity import element_name_similarity

        price = normalizer.normalize("Price")
        cost = normalizer.normalize("Cost")
        score = element_name_similarity(price, cost, thesaurus, config)
        assert score > 0.5

    def test_no_concept_for_plain_names(self, normalizer):
        assert normalizer.normalize("Widget").concepts == frozenset()


class TestTokenTypes:
    def test_number_tokens(self, normalizer):
        normalized = normalizer.normalize("Street4")
        four = [t for t in normalized.tokens if t.text == "4"][0]
        assert four.token_type is TokenType.NUMBER

    def test_special_tokens(self, normalizer):
        normalized = normalizer.normalize("Item#")
        hash_token = [t for t in normalized.tokens if t.text == "#"][0]
        assert hash_token.token_type is TokenType.SPECIAL

    def test_content_default(self, normalizer):
        normalized = normalizer.normalize("Widget")
        assert normalized.tokens[0].token_type is TokenType.CONTENT

    def test_tokens_of_type_excludes_ignored(self, normalizer):
        normalized = normalizer.normalize("UnitOfMeasure")
        assert normalized.tokens_of_type(TokenType.COMMON) == []


class TestCaching:
    def test_normalization_is_cached(self, normalizer):
        first = normalizer.normalize("POLines")
        second = normalizer.normalize("POLines")
        assert first is second

    def test_str_joins_tokens(self, normalizer):
        assert str(normalizer.normalize("POLines")) == "purchase order lines"
