"""Tests for repro.model.schema — the schema graph container."""

import pytest

from repro.exceptions import (
    DuplicateElementError,
    SchemaError,
    UnknownElementError,
)
from repro.model.datatypes import DataType
from repro.model.element import ElementKind, SchemaElement
from repro.model.schema import Schema


@pytest.fixture
def schema():
    return Schema("Test")


def _element(name, **kwargs):
    return SchemaElement(name=name, **kwargs)


class TestElements:
    def test_root_created_with_schema_name(self, schema):
        assert schema.root.name == "Test"
        assert schema.has_element(schema.root)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Schema("")

    def test_add_element(self, schema):
        element = schema.add_element(_element("Table1"))
        assert schema.has_element(element)
        assert element in schema.elements

    def test_duplicate_id_rejected(self, schema):
        element = schema.add_element(_element("A"))
        clone = SchemaElement(name="B", element_id=element.element_id)
        with pytest.raises(DuplicateElementError):
            schema.add_element(clone)

    def test_element_by_id(self, schema):
        element = schema.add_element(_element("A"))
        assert schema.element_by_id(element.element_id) is element

    def test_element_by_unknown_id_raises(self, schema):
        with pytest.raises(UnknownElementError):
            schema.element_by_id("nope")

    def test_element_named_unique(self, schema):
        element = schema.add_element(_element("OnlyOne"))
        assert schema.element_named("OnlyOne") is element

    def test_element_named_ambiguous_raises(self, schema):
        schema.add_element(_element("Dup"))
        schema.add_element(_element("Dup"))
        with pytest.raises(SchemaError):
            schema.element_named("Dup")

    def test_element_named_missing_raises(self, schema):
        with pytest.raises(UnknownElementError):
            schema.element_named("Ghost")

    def test_elements_named_returns_all(self, schema):
        schema.add_element(_element("Dup"))
        schema.add_element(_element("Dup"))
        assert len(schema.elements_named("Dup")) == 2


class TestContainment:
    def test_single_parent_invariant(self, schema):
        a = schema.add_element(_element("A"))
        b = schema.add_element(_element("B"))
        child = schema.add_element(_element("C"))
        schema.add_containment(a, child)
        with pytest.raises(SchemaError):
            schema.add_containment(b, child)

    def test_root_cannot_be_contained(self, schema):
        a = schema.add_element(_element("A"))
        with pytest.raises(SchemaError):
            schema.add_containment(a, schema.root)

    def test_children_in_insertion_order(self, schema):
        names = ["X", "Y", "Z"]
        for name in names:
            child = schema.add_element(_element(name))
            schema.add_containment(schema.root, child)
        assert [c.name for c in schema.contained_children(schema.root)] == names

    def test_container_of(self, schema):
        child = schema.add_element(_element("C"))
        schema.add_containment(schema.root, child)
        assert schema.container_of(child) is schema.root
        assert schema.container_of(schema.root) is None

    def test_foreign_element_rejected(self, schema):
        stranger = _element("Stranger")
        with pytest.raises(UnknownElementError):
            schema.add_containment(schema.root, stranger)

    def test_self_relationship_rejected(self, schema):
        a = schema.add_element(_element("A"))
        with pytest.raises(ValueError):
            schema.add_aggregation(a, a)


class TestOtherRelationships:
    def test_aggregation_allows_multiple_parents(self, schema):
        key1 = schema.add_element(_element("K1"))
        key2 = schema.add_element(_element("K2"))
        column = schema.add_element(_element("Col"))
        schema.add_aggregation(key1, column)
        schema.add_aggregation(key2, column)
        assert schema.aggregated_members(key1) == [column]
        assert schema.aggregated_members(key2) == [column]

    def test_is_derived_from_navigation(self, schema):
        element = schema.add_element(_element("E"))
        base = schema.add_element(_element("T"))
        schema.add_is_derived_from(element, base)
        assert schema.derived_bases(element) == [base]
        assert schema.deriving_elements(base) == [element]

    def test_reference(self, schema):
        refint = schema.add_element(
            _element("fk", kind=ElementKind.REFINT, not_instantiated=True)
        )
        key = schema.add_element(_element("pk", kind=ElementKind.KEY))
        schema.add_reference(refint, key)
        assert schema.reference_targets(refint) == [key]

    def test_refint_elements_found_by_kind(self, schema):
        schema.add_element(
            _element("fk", kind=ElementKind.REFINT, not_instantiated=True)
        )
        assert [e.name for e in schema.refint_elements()] == ["fk"]

    def test_tree_children_merges_containment_and_derivation(self, schema):
        parent = schema.add_element(_element("P"))
        child = schema.add_element(_element("C"))
        base = schema.add_element(_element("T"))
        schema.add_containment(parent, child)
        schema.add_is_derived_from(parent, base)
        assert schema.tree_children(parent) == [child, base]


class TestTraversals:
    @pytest.fixture
    def tree_schema(self, schema):
        a = schema.add_element(_element("A"))
        b = schema.add_element(_element("B"))
        a1 = schema.add_element(_element("A1", data_type=DataType.INTEGER))
        a2 = schema.add_element(_element("A2", data_type=DataType.STRING))
        b1 = schema.add_element(_element("B1", data_type=DataType.STRING))
        schema.add_containment(schema.root, a)
        schema.add_containment(schema.root, b)
        schema.add_containment(a, a1)
        schema.add_containment(a, a2)
        schema.add_containment(b, b1)
        return schema

    def test_preorder(self, tree_schema):
        names = [e.name for e in tree_schema.iter_containment_preorder()]
        assert names == ["Test", "A", "A1", "A2", "B", "B1"]

    def test_postorder(self, tree_schema):
        names = [e.name for e in tree_schema.iter_containment_postorder()]
        assert names == ["A1", "A2", "A", "B1", "B", "Test"]

    def test_postorder_parents_after_children(self, tree_schema):
        order = {e.name: i for i, e in enumerate(
            tree_schema.iter_containment_postorder()
        )}
        assert order["A1"] < order["A"]
        assert order["A"] < order["Test"]

    def test_leaves(self, tree_schema):
        leaves = tree_schema.containment_leaves(tree_schema.root)
        assert {leaf.name for leaf in leaves} == {"A1", "A2", "B1"}

    def test_depth(self, tree_schema):
        a1 = tree_schema.element_named("A1")
        assert tree_schema.containment_depth(tree_schema.root) == 0
        assert tree_schema.containment_depth(a1) == 2

    def test_depth_of_disconnected_element_raises(self, tree_schema):
        orphan = tree_schema.add_element(_element("Orphan"))
        with pytest.raises(SchemaError):
            tree_schema.containment_depth(orphan)

    def test_topological_order_children_first(self, tree_schema):
        order = [e.name for e in tree_schema.tree_edge_topological_order()]
        assert order.index("A1") < order.index("A")
        assert order.index("B1") < order.index("B")
        assert order.index("A") < order.index("Test")

    def test_topological_order_detects_cycles(self, schema):
        a = schema.add_element(_element("A"))
        b = schema.add_element(_element("B"))
        schema.add_is_derived_from(a, b)
        schema.add_is_derived_from(b, a)
        with pytest.raises(SchemaError):
            schema.tree_edge_topological_order()

    def test_len_counts_elements(self, tree_schema):
        assert len(tree_schema) == 6  # root + A, B, A1, A2, B1
