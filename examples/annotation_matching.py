"""Data-dictionary annotations + incremental thesaurus learning.

Two Section 10 future-work items working together:

1. A legacy schema with cryptic column names but a populated data
   dictionary is matched using *description* similarity
   (``use_descriptions=True``).
2. The validated result is fed to :class:`ThesaurusLearner`, which
   mines synonym/abbreviation candidates from the confirmed pairs —
   "a module to incrementally learn synonyms and abbreviations from
   mappings that are performed over time" (Section 9.3).

Run:  python examples/annotation_matching.py
"""

from repro import CupidConfig, CupidMatcher, ThesaurusLearner, builtin_thesaurus
from repro.linguistic.normalizer import Normalizer
from repro.model.builder import SchemaBuilder


def build_legacy():
    builder = SchemaBuilder("Mainframe")
    record = builder.add_child(builder.root, "CUSTREC")
    builder.add_leaf(
        record, "CNAME", "varchar",
        description="customer legal name",
    )
    builder.add_leaf(
        record, "CADDR", "varchar",
        description="customer street address line",
    )
    builder.add_leaf(
        record, "CBAL", "money",
        description="outstanding account balance amount",
    )
    return builder.schema


def build_modern():
    builder = SchemaBuilder("CRM")
    customer = builder.add_child(builder.root, "Customer")
    builder.add_leaf(
        customer, "LegalName", "varchar",
        description="the legal name of the customer",
    )
    builder.add_leaf(
        customer, "StreetAddress", "varchar",
        description="street address of the customer",
    )
    builder.add_leaf(
        customer, "Balance", "money",
        description="current account balance",
    )
    return builder.schema


def main() -> None:
    legacy, modern = build_legacy(), build_modern()

    plain = CupidMatcher().match(legacy, modern)
    print(f"Names only: {len(plain.leaf_mapping)} correspondences")
    for element in plain.leaf_mapping.sorted_by_similarity():
        print(f"  {element}")

    annotated = CupidMatcher(
        config=CupidConfig(use_descriptions=True)
    ).match(legacy, modern)
    print(f"\nWith data-dictionary annotations: "
          f"{len(annotated.leaf_mapping)} correspondences")
    for element in annotated.leaf_mapping.sorted_by_similarity():
        print(f"  {element}")

    # The user validates the mapping; the learner mines it.
    learner = ThesaurusLearner(Normalizer(builtin_thesaurus()))
    learner.observe(annotated.leaf_mapping)
    print("\nLexical knowledge mined from the validated mapping:")
    for proposal in learner.proposals():
        print(f"  {proposal}")

    assert len(annotated.leaf_mapping) >= len(plain.leaf_mapping)


if __name__ == "__main__":
    main()
