"""Persistent schema repository: ingest once, search from any process.

Cupid positions Match as a service over a *repository* of schemas
(Section 2) — a warehouse team keeps every source feed's schema on
hand and asks "which known schemas does this new feed resemble, and
how do its columns map?". A :class:`repro.SchemaRepository` makes that
durable:

* ``ingest(schema)`` pays the expensive per-schema preparation
  (normalization, categorization, distinct-name vocabulary, tree +
  leaf layout) exactly once and serializes it to a versioned on-disk
  format — later processes restore instead of recomputing, with
  bit-identical match results;
* an inverted vocabulary-token index ranks the whole corpus against a
  query without running TreeMatch, so ``search(query, k,
  candidates=C)`` runs the full pipeline only on the C most promising
  schemas;
* the linguistic memo's token/element similarity tiers persist in the
  repository too (keyed by thesaurus + config fingerprints), so even
  the cold-token cost of the first search amortizes across processes.

The same flows are available on the command line::

    python -m repro index schemas/ --repo corpus.repo
    python -m repro search newfeed.sql --repo corpus.repo -k 3

Run:  python examples/repository_search.py
"""

import shutil
import tempfile

from repro import SchemaRepository, schema_from_tree


def build_catalog():
    """A small corpus: three source systems' order schemas."""
    shop = schema_from_tree(
        "ShopOrders",
        {
            "Order": {
                "OrderNum": "integer",
                "Qty": "integer",
                "UnitCost": "money",
                "ShipCity": "string",
            },
        },
    )
    warehouse = schema_from_tree(
        "WarehouseShipments",
        {
            "Shipment": {
                "ShipmentID": "integer",
                "Carrier": "string",
                "Weight": "decimal",
                "DeliveryDate": "date",
            },
        },
    )
    billing = schema_from_tree(
        "BillingInvoices",
        {
            "Invoice": {
                "InvoiceNumber": "integer",
                "Amount": "money",
                "DueDate": "date",
                "CustomerName": "string",
            },
        },
    )
    return [shop, warehouse, billing]


def main() -> None:
    root = tempfile.mkdtemp(prefix="repro_repository_")
    try:
        # ---- Process 1: build the corpus ---------------------------
        with SchemaRepository(root) as repo:
            for schema in build_catalog():
                schema_id = repo.ingest(schema)
                print(f"ingested {schema_id}")
        # Leaving the `with` block persisted repository.json, the
        # schema artifacts, the vocabulary index, and the similarity
        # cache under `root`.

        # ---- Process 2 (simulated): search the persisted corpus ----
        query = schema_from_tree(
            "NewFeed",
            {
                "Purchase": {
                    "PurchaseNumber": "integer",
                    "Quantity": "integer",
                    "UnitPrice": "money",
                    "DeliveryCity": "string",
                },
            },
        )
        repo = SchemaRepository.open(root)
        # candidates=2 → the index prunes the corpus to its two best
        # schemas; only those are actually matched.
        hits = repo.search(query, k=2, candidates=2)
        print(
            f"\nquery {hits.query_name!r}: "
            f"{hits.stats['candidates_considered']} matched, "
            f"{hits.stats['candidates_pruned']} pruned by the index"
        )
        for rank, hit in enumerate(hits, start=1):
            print(
                f"\n{rank}. {hit.schema_name} "
                f"(score {hit.score:.3f})"
            )
            for element in sorted(
                hit.result.leaf_mapping,
                key=lambda e: -e.similarity,
            ):
                print(f"   {element}")
    finally:
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    main()
