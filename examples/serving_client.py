"""Match-as-a-service: drive the HTTP daemon end to end.

The paper positions Match as "an independent component" other tools
call into; the serving subsystem makes that literal — a daemon other
processes reach over HTTP/JSON. This walkthrough:

1. starts the daemon in-process on an ephemeral port (the same stack
   ``python -m repro serve --repo DIR --port N`` runs standalone);
2. ingests a small warehouse corpus over ``POST /ingest``;
3. searches it with a perturbed query over ``POST /search`` — note
   the ``latency_ms`` block, byte-compatible with ``repro search
   --format json``;
4. matches two corpus schemas by repository id over ``POST /match``;
5. reads the operational story from ``GET /stats``: per-endpoint
   p50/p95/p99 latency histograms, in-flight gauges, session-pool
   cache counters.

Run:  python examples/serving_client.py
"""

import json
import tempfile
import threading
import urllib.request

from repro import SchemaRepository
from repro.datasets.generator import PerturbationConfig, SchemaGenerator
from repro.io.json_io import schema_to_dict
from repro.serving import MatchHTTPServer, MatchService


def call(port, path, body=None):
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=data,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read())


def main():
    generator = SchemaGenerator(seed=42)
    corpus = [
        generator.generate(name=f"feed{i}", n_leaves=10, max_depth=3)
        for i in range(6)
    ]
    query, _ = SchemaGenerator(seed=7).perturb(
        corpus[2], PerturbationConfig(abbreviate=0.3, synonym=0.2)
    )
    query.name = "incoming-feed"

    # 1. Boot the daemon (port 0 = ephemeral). Standalone equivalent:
    #    python -m repro serve --repo corpus.repo --port 8765
    repo_dir = tempfile.mkdtemp(prefix="serving_example_")
    service = MatchService(SchemaRepository(repo_dir), sessions=2)
    server = MatchHTTPServer(("127.0.0.1", 0), service)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    port = server.port
    print(f"daemon up on http://127.0.0.1:{port}")
    print("health:", call(port, "/health"))

    # 2. Ingest the corpus in one batch (one index segment).
    ingested = call(port, "/ingest", {
        "schemas": [{"schema": schema_to_dict(s)} for s in corpus],
    })
    print(f"\ningested {len(ingested['ids'])} schemas "
          f"in {ingested['latency_ms']['total_ms']:.1f} ms")

    # 3. Search: serialized-schema body; "text"+"format" (sql/xml/
    #    dtd/oo) works too for raw schema sources.
    found = call(port, "/search", {
        "schema": schema_to_dict(query), "k": 3, "candidates": 4,
    })
    print(f"\ntop matches for {found['query_schema']!r} "
          f"(latency {found['latency_ms']['total_ms']:.1f} ms, "
          f"match phase {found['latency_ms']['match_ms']:.1f} ms):")
    for rank, match in enumerate(found["matches"], start=1):
        print(f"  {rank}. {match['target_schema']} "
              f"[{match['schema_id']}] score {match['score']:.4f} "
              f"({len(match['elements'])} correspondences)")

    # 4. Match two corpus members by repository id — no schema bytes
    #    cross the wire; the daemon loads its own artifacts.
    pair = call(port, "/match", {
        "source": {"id": ingested["ids"][0]},
        "target": {"id": ingested["ids"][1]},
    })
    print(f"\nmatch {pair['source_schema']} vs {pair['target_schema']}: "
          f"score {pair['score']:.4f}")

    # 5. Operational readout.
    stats = call(port, "/stats")
    print("\nper-endpoint latency (ms):")
    for endpoint, snap in stats["endpoints"].items():
        print(f"  {endpoint:8s} count={snap['count']:<3d} "
              f"p50={snap['p50_ms']:<8g} p95={snap['p95_ms']:<8g} "
              f"p99={snap['p99_ms']:g}")
    pool = stats["session_pool"]
    print(f"session pool: {pool['prepare_hits']} prepare hits / "
          f"{pool['prepare_misses']} misses across "
          f"{stats['health']['sessions']} sessions; "
          f"{stats['health']['segments']} index segment(s) on disk")

    server.shutdown()
    server.server_close()
    service.close()
    print("\ndaemon drained and repository flushed")


if __name__ == "__main__":
    main()
