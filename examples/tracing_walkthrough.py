"""Observability walkthrough: spans, request ids, metrics, export.

Cupid's pipeline crosses a lot of machinery on one request — HTTP
edge, service session pool, repository index, match pipeline, and
(for large planes) a pool of shard worker *processes*. The tracer in
:mod:`repro.obs.trace` stitches all of it into one span tree per
request. This walkthrough:

1. arms the tracer (disarmed it costs one ``None``-check per site —
   the same discipline as the fault-injection layer) and runs a
   worker-sharded match, printing the span tree: pipeline stages,
   TreeMatch passes, and the ``parallel.worker.*`` spans that were
   built in child processes and re-parented at the op barrier;
2. exports the same tree as Chrome trace-event JSON — load it in
   chrome://tracing or https://ui.perfetto.dev to see the shard
   processes on their own pid tracks;
3. starts the HTTP daemon and sends a ``"trace": true`` search:
   the response carries the request's tree inline, every span
   stamped with the request id from the ``X-Request-Id`` header;
4. scrapes ``GET /metrics`` and shows the Prometheus exposition
   agreeing with ``GET /stats`` — same instruments, one bookkeeping.

Run:  python examples/tracing_walkthrough.py
"""

import json
import tempfile
import threading
import urllib.request

from repro import CupidMatcher, SchemaRepository
from repro.config import CupidConfig
from repro.datasets.generator import PerturbationConfig, SchemaGenerator
from repro.io.json_io import schema_to_dict
from repro.obs import trace
from repro.serving import MatchHTTPServer, MatchService


def show(node, depth=0, fanout=4):
    counters = ""
    if node.get("counters"):
        counters = "  " + ", ".join(
            f"{k}={v}" for k, v in sorted(node["counters"].items())
        )
    print(
        f"{'  ' * depth}{node['name']:<28} "
        f"{node['wall_ms']:>9.3f} ms{counters}"
    )
    children = node.get("children", ())
    for child in children[:fanout]:
        show(child, depth + 1, fanout)
    if len(children) > fanout:
        print(
            f"{'  ' * (depth + 1)}... (+{len(children) - fanout} more "
            "sibling spans)"
        )


def call(port, path, body=None, headers=None):
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=data,
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        raw = response.read()
        if response.headers.get_content_type() == "application/json":
            return json.loads(raw)
        return raw.decode()


def main():
    generator = SchemaGenerator(seed=23)
    schema = generator.generate(n_leaves=48, max_depth=3)
    other, _ = generator.perturb(
        schema, PerturbationConfig(abbreviate=0.3, synonym=0.2)
    )

    # -- 1. a traced, worker-sharded match ---------------------------
    trace.arm()
    config = CupidConfig().replace(workers=2, parallel_leaf_threshold=1)
    CupidMatcher(config=config).match(schema, other)
    (root,) = trace.take_roots()
    print("== span tree of one sharded match ==")
    show(trace.span_tree(root))

    # -- 2. Chrome trace export --------------------------------------
    with tempfile.NamedTemporaryFile(
        suffix=".json", delete=False
    ) as handle:
        events = trace.write_chrome_trace(handle.name, [root])
    pids = {e["pid"] for e in trace.chrome_trace_events([root])}
    print(
        f"\n== chrome trace ==\n{events} events across {len(pids)} "
        f"process(es) -> {handle.name}\n(open in chrome://tracing or "
        "ui.perfetto.dev)"
    )

    # -- 3. a traced request through the daemon ----------------------
    with tempfile.TemporaryDirectory() as tmp:
        repository = SchemaRepository(tmp, config=config)
        repository.ingest(schema)
        repository.save()
        service = MatchService(repository, sessions=1)
        httpd = MatchHTTPServer(("127.0.0.1", 0), service)
        threading.Thread(target=httpd.serve_forever, daemon=True).start()
        try:
            response = call(
                httpd.port,
                "/search",
                {
                    "schema": schema_to_dict(other),
                    "k": 1,
                    "trace": True,
                },
                headers={"X-Request-Id": "walkthrough-1"},
            )
            print("\n== traced /search (request id on every span) ==")
            print("request_id:", response["trace"]["request_id"])
            for span in response["trace"]["spans"]:
                show(span)

            stats = call(httpd.port, "/stats")
            exposition = call(httpd.port, "/metrics")
            search_lines = [
                line
                for line in exposition.splitlines()
                if line.startswith("repro_request_latency_seconds_count")
            ]
            print("\n== /metrics vs /stats (same instruments) ==")
            print("\n".join(search_lines))
            print(
                "stats search count:",
                stats["endpoints"]["search"]["count"],
            )
        finally:
            httpd.shutdown()
            httpd.server_close()
            service.close()


if __name__ == "__main__":
    main()
