"""XML message mapping: CIDX ↔ Excel purchase orders (Figure 7).

The paper's E-business motivation: "in E-business, to help map messages
between different XML formats". This example imports both real-world
purchase-order schemas from the XML dialect, matches them with exactly
the six thesaurus entries the paper used, and exports the mapping as
JSON — the library-user equivalent of Cupid's BizTalk Mapper output.

Run:  python examples/xml_message_mapping.py
"""

import json

from repro import CupidConfig, CupidMatcher
from repro.datasets.cidx_excel import cidx_schema, excel_schema
from repro.io.json_io import mapping_to_dict
from repro.linguistic.lexicon import paper_experiment_thesaurus


def main() -> None:
    cidx = cidx_schema()
    excel = excel_schema()
    print(f"Source: {cidx}")
    print(f"Target: {excel}")

    # The paper's setup: a 6-entry domain thesaurus, cinc raised per
    # Table 1's "function of maximum schema depth" guidance.
    matcher = CupidMatcher(
        thesaurus=paper_experiment_thesaurus(),
        config=CupidConfig(cinc=1.35),
    )
    result = matcher.match(cidx, excel)

    print(f"\n{len(result.leaf_mapping)} attribute correspondences:")
    for element in result.leaf_mapping.sorted_by_similarity():
        print(f"  {element}")

    # Context-dependent output: the single CIDX Contact block feeds
    # both the DeliverTo and InvoiceTo contacts of the Excel format.
    contact_targets = sorted(
        ".".join(e.target_path)
        for e in result.leaf_mapping
        if e.source_name == "ContactName" and e.target_name == "contactName"
    )
    print("\nContact routed into both contexts:")
    for target in contact_targets:
        print(f"  PO.Contact.ContactName -> {target}")

    exported = json.dumps(mapping_to_dict(result.leaf_mapping), indent=2)
    print(f"\nJSON export ({len(exported.splitlines())} lines), head:")
    print("\n".join(exported.splitlines()[:12]))


if __name__ == "__main__":
    main()
