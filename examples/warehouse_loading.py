"""Data-warehouse loading: map an operational RDB onto a star schema.

The paper's warehouse motivation: "in data warehouses, to map data
sources into warehouse schemas". Both Figure 8 schemas are written as
SQL DDL and imported through the mini DDL parser; referential
constraints become join-view nodes (Section 8.3), which is what lets
Cupid map the *join* of Territories and Region onto the denormalized
Geography dimension, and Orders ⋈ OrderDetails onto the Sales fact
table.

Run:  python examples/warehouse_loading.py
"""

from repro import CupidConfig, CupidMatcher
from repro.datasets.rdb_star import rdb_schema, star_schema


def main() -> None:
    rdb = rdb_schema()
    star = star_schema()
    print(f"Source: {rdb} ({len(rdb.refint_elements())} foreign keys)")
    print(f"Target: {star} ({len(star.refint_elements())} foreign keys)")

    config = CupidConfig(cinc=1.35, leaf_count_ratio=2.5)
    matcher = CupidMatcher(config=config)
    result = matcher.match(rdb, star)

    print("\nTable/join-level mapping:")
    for element in result.nonleaf_mapping.sorted_by_similarity():
        print(f"  {element}")

    print("\nColumn mapping for the Sales fact table:")
    for element in result.leaf_mapping.sorted_by_similarity():
        if element.target_path[1] == "SALES":
            print(f"  {element}")

    # The three Star PostalCode columns all trace back to
    # Customers.PostalCode — Section 9.2 calls this out as desirable
    # for downstream query discovery.
    postal = [
        ".".join(e.target_path)
        for e in result.leaf_mapping
        if ".".join(e.source_path).endswith("CUSTOMERS.PostalCode")
    ]
    print("\nCustomers.PostalCode drives:")
    for target in sorted(postal):
        print(f"  -> {target}")

    # Join views visible in the source tree:
    joins = [n for n in result.source_tree.nodes() if n.is_join_view]
    print(f"\n{len(joins)} join views reified in the RDB schema tree, e.g.:")
    for node in joins[:4]:
        print(f"  {node.path_string()} ({node.leaf_count()} columns)")


if __name__ == "__main__":
    main()
