"""The user-interaction loop: initial mappings as hints (Section 8.4).

"The user can make corrections to a generated result map, and then
re-run the match with the corrected input map, thereby generating an
improved map." This example runs a match that misses a pair (no
thesaurus support for a cryptic column name), shows the user supplying
that one correspondence, and re-runs: the hint not only fixes the
hinted leaf but also lifts the structural similarity of its ancestors.

Run:  python examples/iterative_feedback.py
"""

from repro import CupidMatcher
from repro.linguistic.thesaurus import empty_thesaurus
from repro.model.builder import schema_from_tree


def main() -> None:
    legacy = schema_from_tree(
        "Legacy",
        {
            "ORD": {
                "ONUM": "integer",
                "XQTY7": "integer",     # cryptic legacy column
                "PRICE": "money",
            },
        },
    )
    modern = schema_from_tree(
        "Modern",
        {
            "Order": {
                "OrderNumber": "integer",
                "Quantity": "integer",
                "Price": "money",
            },
        },
    )

    matcher = CupidMatcher(thesaurus=empty_thesaurus())

    first = matcher.match(legacy, modern)
    print("First pass (no thesaurus, no hints):")
    for element in first.leaf_mapping.sorted_by_similarity():
        print(f"  {element}")
    missing = ("Legacy.ORD.XQTY7", "Modern.Order.Quantity")
    assert missing not in first.leaf_mapping.path_pairs()
    print(f"  [missed: {missing[0]} -> {missing[1]}]")

    print("\nUser validates the map and adds the missing pair as a hint.")
    second = matcher.match(
        legacy,
        modern,
        initial_mapping=[("ORD.XQTY7", "Order.Quantity")],
    )
    print("Second pass (with the initial mapping):")
    for element in second.leaf_mapping.sorted_by_similarity():
        print(f"  {element}")
    assert missing in second.leaf_mapping.path_pairs()

    # The hint also strengthens the parents' structural similarity.
    before = first.wsim("ORD", "Order")
    after = second.wsim("ORD", "Order")
    print(f"\nwsim(ORD, Order): {before:.3f} -> {after:.3f} "
          "(hint lifted the ancestors too)")
    assert after >= before


if __name__ == "__main__":
    main()
