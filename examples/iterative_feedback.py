"""The user-interaction loop: initial mappings as hints (Section 8.4).

"The user can make corrections to a generated result map, and then
re-run the match with the corrected input map, thereby generating an
improved map." That loop is session-shaped: the same schema pair is
matched over and over while the user refines hints. This example runs
it through :class:`repro.MatchSession` — the first match prepares both
schemas and caches the pair's lsim table, and ``session.rematch``
reruns with the user's correction while *skipping* the unchanged
phases (per-schema preparation and the linguistic phase; only
structure matching and mapping generation actually re-run). Results
are bit-identical to a from-scratch ``CupidMatcher.match`` with the
same hints.

Run:  python examples/iterative_feedback.py
"""

from repro import MatchSession
from repro.linguistic.thesaurus import empty_thesaurus
from repro.model.builder import schema_from_tree


def main() -> None:
    legacy = schema_from_tree(
        "Legacy",
        {
            "ORD": {
                "ONUM": "integer",
                "XQTY7": "integer",     # cryptic legacy column
                "PRICE": "money",
            },
        },
    )
    modern = schema_from_tree(
        "Modern",
        {
            "Order": {
                "OrderNumber": "integer",
                "Quantity": "integer",
                "Price": "money",
            },
        },
    )

    session = MatchSession(thesaurus=empty_thesaurus())

    first = session.match(legacy, modern)
    print("First pass (no thesaurus, no hints):")
    for element in first.leaf_mapping.sorted_by_similarity():
        print(f"  {element}")
    missing = ("Legacy.ORD.XQTY7", "Modern.Order.Quantity")
    assert missing not in first.leaf_mapping.path_pairs()
    print(f"  [missed: {missing[0]} -> {missing[1]}]")

    print("\nUser validates the map and adds the missing pair as a hint.")
    second = session.rematch(
        first,
        feedback=[("ORD.XQTY7", "Order.Quantity")],
    )
    print("Second pass (rematch with the feedback hint):")
    for element in second.leaf_mapping.sorted_by_similarity():
        print(f"  {element}")
    assert missing in second.leaf_mapping.path_pairs()

    # The rerun skipped the already-cached phases: both schemas were
    # prepared once, and the pair's lsim table came from the session
    # cache (the hint is applied to a copy).
    info = session.cache_info()
    assert info["prepare_hits"] >= 2 and info["lsim_hits"] == 1
    print(f"\n(session cache: {info})")

    # The hint also strengthens the parents' structural similarity.
    before = first.wsim("ORD", "Order")
    after = second.wsim("ORD", "Order")
    print(f"wsim(ORD, Order): {before:.3f} -> {after:.3f} "
          "(hint lifted the ancestors too)")
    assert after >= before


if __name__ == "__main__":
    main()
