"""Bring your own domain thesaurus.

Section 5.1: "The thesaurus can include terms used in common language
as well as domain-specific references." This example matches two HR
schemas that share almost no literal vocabulary, first with an empty
thesaurus (poor), then with a small domain thesaurus layered on top of
the bundled common-language lexicon (good).

Run:  python examples/custom_thesaurus.py
"""

from repro import CupidMatcher, Thesaurus, builtin_thesaurus, schema_from_tree
from repro.linguistic.thesaurus import empty_thesaurus


def build_schemas():
    hr = schema_from_tree(
        "HR",
        {
            "Emp": {
                "EmpNo": "integer",
                "Moniker": "string",
                "Remuneration": "money",
                "DeptCode": "string",
            },
        },
    )
    payroll = schema_from_tree(
        "Payroll",
        {
            "StaffMember": {
                "StaffId": "integer",
                "FullName": "string",
                "Salary": "money",
                "UnitCode": "string",
            },
        },
    )
    return hr, payroll


def domain_thesaurus() -> Thesaurus:
    """HR-specific vocabulary, merged over the common-language lexicon."""
    domain = Thesaurus(name="hr-domain")
    domain.add_abbreviation("emp", ["employee"])
    domain.add_abbreviation("no", ["number"])
    domain.add_abbreviation("dept", ["department"])
    domain.add_synonym("employee", "staff", 0.9)
    domain.add_synonym("moniker", "name", 0.85)
    domain.add_synonym("remuneration", "salary", 0.9)
    domain.add_synonym("department", "unit", 0.8)
    domain.add_synonym("number", "identifier", 0.7)
    return builtin_thesaurus().merged_with(domain)


def report(title, result):
    print(f"\n{title}")
    if not len(result.leaf_mapping):
        print("  (no correspondences found)")
    for element in result.leaf_mapping.sorted_by_similarity():
        print(f"  {element}")


def main() -> None:
    hr, payroll = build_schemas()

    bare = CupidMatcher(thesaurus=empty_thesaurus()).match(hr, payroll)
    report("Without any thesaurus:", bare)

    enriched = CupidMatcher(thesaurus=domain_thesaurus()).match(hr, payroll)
    report("With the HR domain thesaurus:", enriched)

    gained = len(enriched.leaf_mapping) - len(bare.leaf_mapping)
    print(f"\nDomain vocabulary added {gained} correspondence(s).")


if __name__ == "__main__":
    main()
