"""Mapping reuse: compose past matches through a mediated schema.

The taxonomy (Section 3) lists reuse of past match information —
"compute a mapping that is the composition of mappings that were
performed earlier". Two source systems were each matched to a mediated
schema at different times; composing the first mapping with the
*inverse* of the second yields a direct source-to-source mapping with
no new matching run, plus a hierarchical rendering (the Section 7
"enrich the structure of the map" future work).

Run:  python examples/mediated_schema_reuse.py
"""

from repro import (
    CupidMatcher,
    build_hierarchical_mapping,
    compose_mappings,
    invert_mapping,
    schema_from_tree,
)


def main() -> None:
    shop_a = schema_from_tree(
        "ShopA",
        {
            "Order": {
                "OrderNum": "integer",
                "Qty": "integer",
                "UnitCost": "money",
                "ShipCity": "string",
            },
        },
    )
    shop_b = schema_from_tree(
        "ShopB",
        {
            "Purchase": {
                "PurchaseNumber": "integer",
                "Quantity": "integer",
                "UnitPrice": "money",
                "DeliveryCity": "string",
            },
        },
    )
    mediated = schema_from_tree(
        "Mediated",
        {
            "Order": {
                "OrderNumber": "integer",
                "Quantity": "integer",
                "UnitPrice": "money",
                "ShippingCity": "string",
            },
        },
    )

    matcher = CupidMatcher()
    a_to_mediated = matcher.match(shop_a, mediated).leaf_mapping
    b_to_mediated = matcher.match(shop_b, mediated).leaf_mapping
    print(f"ShopA -> Mediated: {len(a_to_mediated)} correspondences")
    print(f"ShopB -> Mediated: {len(b_to_mediated)} correspondences")

    # Reuse: A -> Mediated ∘ (B -> Mediated)⁻¹ = A -> B, no new match.
    a_to_b = compose_mappings(a_to_mediated, invert_mapping(b_to_mediated))
    print(f"\nComposed ShopA -> ShopB ({len(a_to_b)} correspondences):")
    for element in a_to_b.sorted_by_similarity():
        print(f"  {element}")

    assert ("ShopA.Order.Qty", "ShopB.Purchase.Quantity") in a_to_b.path_pairs()
    assert (
        "ShopA.Order.UnitCost", "ShopB.Purchase.UnitPrice"
    ) in a_to_b.path_pairs()

    # Hierarchical rendering of a direct match (Section 7 future work).
    direct = matcher.match(shop_a, shop_b)
    hierarchy = build_hierarchical_mapping(
        direct.nonleaf_mapping, direct.leaf_mapping
    )
    print("\nDirect ShopA -> ShopB as a hierarchical mapping model:")
    print(hierarchy.render())


if __name__ == "__main__":
    main()
