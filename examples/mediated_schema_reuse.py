"""Mapping reuse through a mediated schema, session-style.

The taxonomy (Section 3) lists reuse of past match information —
"compute a mapping that is the composition of mappings that were
performed earlier". The operational shape is one-vs-many: a mediated
schema is matched against every source system. A
:class:`repro.MatchSession` fits that shape exactly — the mediated
schema is *prepared once* (normalization, categorization, tree
construction, dense leaf layout) and every ``match_many`` target
reuses the cached :class:`repro.PreparedSchema`, with results
bit-identical to independent ``CupidMatcher.match`` calls.

Composing the first mapping with the *inverse* of the second then
yields a direct source-to-source mapping with no new matching run,
plus a hierarchical rendering (the Section 7 "enrich the structure of
the map" future work).

Run:  python examples/mediated_schema_reuse.py
"""

from repro import (
    MatchSession,
    build_hierarchical_mapping,
    compose_mappings,
    invert_mapping,
    schema_from_tree,
)


def main() -> None:
    shop_a = schema_from_tree(
        "ShopA",
        {
            "Order": {
                "OrderNum": "integer",
                "Qty": "integer",
                "UnitCost": "money",
                "ShipCity": "string",
            },
        },
    )
    shop_b = schema_from_tree(
        "ShopB",
        {
            "Purchase": {
                "PurchaseNumber": "integer",
                "Quantity": "integer",
                "UnitPrice": "money",
                "DeliveryCity": "string",
            },
        },
    )
    mediated = schema_from_tree(
        "Mediated",
        {
            "Order": {
                "OrderNumber": "integer",
                "Quantity": "integer",
                "UnitPrice": "money",
                "ShippingCity": "string",
            },
        },
    )

    # One session: the mediated schema is prepared once and matched
    # against every shop (swap in hundreds of sources — same API).
    session = MatchSession()
    results = session.match_many(mediated, [shop_a, shop_b])
    mediated_to_a, mediated_to_b = (r.leaf_mapping for r in results)
    print(f"Mediated -> ShopA: {len(mediated_to_a)} correspondences")
    print(f"Mediated -> ShopB: {len(mediated_to_b)} correspondences")
    info = session.cache_info()
    print(f"(session prepared {info['prepared_schemas']} schemas for "
          f"{info['matches']} matches)")

    # Reuse: (Mediated -> A)⁻¹ ∘ (Mediated -> B) = A -> B, no new match.
    a_to_b = compose_mappings(
        invert_mapping(mediated_to_a), mediated_to_b
    )
    print(f"\nComposed ShopA -> ShopB ({len(a_to_b)} correspondences):")
    for element in a_to_b.sorted_by_similarity():
        print(f"  {element}")

    assert ("ShopA.Order.Qty", "ShopB.Purchase.Quantity") in a_to_b.path_pairs()
    assert (
        "ShopA.Order.UnitCost", "ShopB.Purchase.UnitPrice"
    ) in a_to_b.path_pairs()

    # Hierarchical rendering of a direct match (Section 7 future work).
    # ShopA and ShopB are already prepared — the session reuses them.
    direct = session.match(shop_a, shop_b)
    hierarchy = build_hierarchical_mapping(
        direct.nonleaf_mapping, direct.leaf_mapping
    )
    print("\nDirect ShopA -> ShopB as a hierarchical mapping model:")
    print(hierarchy.render())


if __name__ == "__main__":
    main()
