"""Quickstart: match the paper's Figure 2 purchase-order schemas.

Builds the two schemas programmatically, runs Cupid with the defaults,
and prints the leaf and element mappings — reproducing the Section 4
walk-through (Qty→Quantity, UoM→UnitOfMeasure, and the Bill≈Invoice /
Ship≈Deliver context disambiguation).

Run:  python examples/quickstart.py
"""

from repro import CupidMatcher, schema_from_tree


def main() -> None:
    po = schema_from_tree(
        "PO",
        {
            "POLines": {
                "Count": "integer",
                "Item": {
                    "Line": "integer",
                    "Qty": "integer",
                    "UoM": "string",
                },
            },
            "POShipTo": {"Street": "string", "City": "string"},
            "POBillTo": {"Street": "string", "City": "string"},
        },
    )
    purchase_order = schema_from_tree(
        "PurchaseOrder",
        {
            "Items": {
                "ItemCount": "integer",
                "Item": {
                    "ItemNumber": "integer",
                    "Quantity": "integer",
                    "UnitOfMeasure": "string",
                },
            },
            "DeliverTo": {
                "Address": {"Street": "string", "City": "string"},
            },
            "InvoiceTo": {
                "Address": {"Street": "string", "City": "string"},
            },
        },
    )

    matcher = CupidMatcher()  # bundled thesaurus, Table 1 defaults
    result = matcher.match(po, purchase_order)

    print("Leaf mapping (attribute-level, naive 1:n):")
    for element in result.leaf_mapping.sorted_by_similarity():
        print(f"  {element}")

    print("\nElement mapping (non-leaf):")
    for element in result.nonleaf_mapping.sorted_by_similarity():
        print(f"  {element}")

    print("\n1:1 extraction (greedy):")
    for element in result.one_to_one().sorted_by_similarity():
        print(f"  {element}")

    # The narrative checks from Section 4.
    pairs = result.leaf_mapping.path_pairs()
    assert ("PO.POLines.Item.Qty",
            "PurchaseOrder.Items.Item.Quantity") in pairs
    assert ("PO.POBillTo.City",
            "PurchaseOrder.InvoiceTo.Address.City") in pairs
    print("\nSection 4 walk-through reproduced.")


if __name__ == "__main__":
    main()
