"""E3 — Table 3 + Figure 7: the CIDX ↔ Excel purchase-order match.

Reproduces the element-level rows of Table 3 and the attribute-level
narrative of Section 9.2, using exactly the paper's thesaurus (4
abbreviations + 2 synonym pairs).
"""

from __future__ import annotations

import pytest

from repro.datasets.cidx_excel import cidx_excel_gold
from repro.eval.reporting import render_table
from repro.eval.runner import run_cidx_excel


def test_table3_element_mappings(publish, benchmark):
    out = benchmark(run_cidx_excel)
    rows = [list(row) for row in out["element_rows"]]
    publish(
        "table3_cidx_excel",
        render_table(
            ["CIDX element", "Excel element", "Cupid"],
            rows,
            title="Table 3 — CIDX → Excel element mappings (paper: all Yes)",
        ),
    )
    assert all(row[2] == "Yes" for row in rows)


def test_attribute_level_narrative(publish):
    out = run_cidx_excel()
    quality = out["leaf_quality"]
    gold = cidx_excel_gold()
    false_positives = gold.false_positives(out["leaf_mapping"])

    lines = [
        "Section 9.2 attribute-level results (CIDX ↔ Excel)",
        f"  gold attribute pairs found: {quality.gold_found}/{quality.gold_total}",
        f"  precision {quality.precision:.2f} / recall {quality.recall:.2f} "
        f"/ F1 {quality.f1:.2f}",
        f"  naive-generator false positives: {quality.false_positives} "
        "(paper reports 2, e.g. contactName → companyName)",
    ]
    for element in false_positives:
        lines.append(f"    spurious: {element}")
    publish("table3_attributes", "\n".join(lines))

    # "Cupid identifies all the correct XML-attribute matching pairs."
    assert quality.recall == 1.0
    # The paper's flagship structure-only match.
    assert any(
        e.source_name == "line" and e.target_name == "itemNumber"
        for e in out["leaf_mapping"]
    )
    # The known false positive of the naive 1:n generator.
    assert any(
        e.source_name == "ContactName" and e.target_name == "companyName"
        for e in out["leaf_mapping"]
    )


def test_context_dependent_contacts(publish):
    """The single CIDX Contact maps into both Excel Contact contexts —
    the 1:n mapping Section 7 describes."""
    out = run_cidx_excel()
    contact_targets = {
        ".".join(e.target_path)
        for e in out["leaf_mapping"]
        if e.source_name == "ContactName" and e.target_name == "contactName"
    }
    assert "PurchaseOrder.DeliverTo.Contact.contactName" in contact_targets
    assert "PurchaseOrder.InvoiceTo.Contact.contactName" in contact_targets
