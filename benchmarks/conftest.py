"""Shared helpers for the benchmark harness.

Every benchmark both *times* its experiment (pytest-benchmark) and
*prints/persists* the table the paper reports, so ``pytest benchmarks/
--benchmark-only`` regenerates the evaluation section. Rendered tables
are written to ``benchmarks/results/`` and echoed to stdout (visible
with ``-s``).
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def publish(results_dir):
    """Write a rendered table to results/<name>.txt and echo it."""

    def _publish(name: str, text: str) -> None:
        path = os.path.join(results_dir, f"{name}.txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _publish
