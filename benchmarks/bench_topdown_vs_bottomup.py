"""E11 — top-down (TranScm-style) vs bottom-up (Cupid) matching.

Section 6: "a bottom-up approach is more conservative and is able to
match moderately varied schema structures. A top-down approach is
optimistic and will perform poorly if the two schemas differ
considerably at the top level." This bench quantifies that trade-off on
the canonical examples and the Figure 2 pair.
"""

from __future__ import annotations

import pytest

from repro import CupidMatcher
from repro.baselines.topdown import TopDownMatcher
from repro.datasets.canonical import canonical_examples
from repro.datasets.figure2 import figure2_po, figure2_purchase_order
from repro.datasets.gold import GoldMapping
from repro.eval.reporting import render_table

_FIGURE2_GOLD = GoldMapping.from_pairs(
    [
        ("POLines.Item.Qty", "Items.Item.Quantity"),
        ("POLines.Item.UoM", "Items.Item.UnitOfMeasure"),
        ("POLines.Count", "Items.ItemCount"),
        ("POBillTo.City", "InvoiceTo.Address.City"),
        ("POBillTo.Street", "InvoiceTo.Address.Street"),
        ("POShipTo.City", "DeliverTo.Address.City"),
        ("POShipTo.Street", "DeliverTo.Address.Street"),
    ]
)


def _recall(gold, mapping) -> float:
    return len(gold.found_pairs(mapping)) / len(gold) if len(gold) else 0.0


def test_topdown_vs_bottomup(publish, benchmark):
    def run():
        rows = []
        for example in canonical_examples():
            cupid = CupidMatcher().match(example.schema1, example.schema2)
            top_down = TopDownMatcher().match(
                example.schema1, example.schema2
            )
            rows.append(
                (
                    f"canonical {example.example_id}: {example.title[:32]}",
                    _recall(example.gold, cupid.leaf_mapping),
                    _recall(example.gold, top_down),
                )
            )
        cupid = CupidMatcher().match(figure2_po(), figure2_purchase_order())
        top_down = TopDownMatcher().match(
            figure2_po(), figure2_purchase_order()
        )
        rows.append(
            (
                "Figure 2 (PO / PurchaseOrder)",
                _recall(_FIGURE2_GOLD, cupid.leaf_mapping),
                _recall(_FIGURE2_GOLD, top_down),
            )
        )
        return rows

    rows = benchmark(run)
    publish(
        "topdown_vs_bottomup",
        render_table(
            ["Workload", "Bottom-up (Cupid)", "Top-down (TranScm-style)"],
            [[name, f"{b:.2f}", f"{t:.2f}"] for name, b, t in rows],
            title="E11 — gold recall: bottom-up vs top-down",
        ),
    )
    # Bottom-up is never worse, and strictly better somewhere.
    assert all(bottom >= top for _, bottom, top in rows)
    assert any(bottom > top for _, bottom, top in rows)
    # Cupid stays perfect on all canonical workloads.
    assert all(bottom == 1.0 for _, bottom, _ in rows)
