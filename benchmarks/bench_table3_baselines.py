"""E3b — the DIKE and MOMIS columns of Table 3 (CIDX ↔ Excel).

The paper's observations reproduced here:

* **DIKE** (ER remodeling, modeling 1 of Section 9.2: "the root
  elements and all XML-elements that had any attributes" are entities,
  so DeliverTo/InvoiceTo are relationships): POHeader→Header and
  Contact→Contact merge, but "entities POShipTo and Address are merged
  into a single entity" — the address blocks collapse together and the
  two context rows are *not* achieved.
* **MOMIS** (class rendering): "the five classes (POShipTo, POBillTo,
  InvoiceTo, DeliverTo, Address) are clustered together, but the
  corresponding elements in the PO and PurchaseOrder cluster are not
  mapped to each other" — one address cluster, no context separation.
* **Cupid** achieves both context rows (E3 proper).
"""

from __future__ import annotations

import pytest

from repro.baselines.dike import DikeMatcher, LSPD
from repro.baselines.momis import MomisMatcher
from repro.eval.reporting import render_table
from repro.eval.runner import run_cidx_excel
from repro.io.er_model import ERModel
from repro.io.oo_model import parse_oo_model
from repro.model.datatypes import DataType

_ADDRESS_ATTRS = [
    "Street1", "Street2", "Street3", "Street4", "City",
    "StateProvince", "PostalCode", "Country",
]


def _cidx_er() -> ERModel:
    model = ERModel("CIDX")
    po = model.add_entity("PO")
    po.add_attribute("startAt", DataType.DATE)
    header = model.add_entity("POHeader")
    header.add_attribute("PONumber", DataType.STRING, is_key=True)
    header.add_attribute("PODate", DataType.DATE)
    contact = model.add_entity("Contact")
    for attr in ("ContactName", "ContactFunctionCode", "ContactEmail",
                 "ContactPhone"):
        contact.add_attribute(attr, DataType.STRING)
    for entity_name in ("POShipTo", "POBillTo"):
        entity = model.add_entity(entity_name)
        for attr in _ADDRESS_ATTRS + ["attn", "entityIdentifier"]:
            entity.add_attribute(attr, DataType.STRING)
    lines = model.add_entity("POLines")
    lines.add_attribute("count", DataType.INTEGER)
    item = model.add_entity("Item")
    for attr_name, data_type in (
        ("line", DataType.INTEGER), ("partno", DataType.STRING),
        ("qty", DataType.INTEGER), ("uom", DataType.STRING),
        ("unitPrice", DataType.DECIMAL),
    ):
        item.add_attribute(attr_name, data_type)
    for name in ("POHeader", "Contact", "POShipTo", "POBillTo", "POLines"):
        model.add_relationship(f"has{name}", ["PO", name])
    model.add_relationship("lineItems", ["POLines", "Item"])
    return model


def _excel_er() -> ERModel:
    model = ERModel("Excel")
    po = model.add_entity("PurchaseOrder")
    po.add_attribute("totalValue", DataType.DECIMAL)
    header = model.add_entity("Header")
    header.add_attribute("orderNum", DataType.STRING, is_key=True)
    header.add_attribute("orderDate", DataType.DATE)
    header.add_attribute("yourAccountCode", DataType.STRING)
    header.add_attribute("ourAccountCode", DataType.STRING)
    address = model.add_entity("Address")
    for attr in _ADDRESS_ATTRS:
        address.add_attribute(attr.lower()[:1] + attr[1:], DataType.STRING)
    contact = model.add_entity("Contact")
    for attr in ("contactName", "companyName", "e-mail", "telephone"):
        contact.add_attribute(attr, DataType.STRING)
    items = model.add_entity("Items")
    items.add_attribute("itemCount", DataType.INTEGER)
    item = model.add_entity("Item")
    for attr_name, data_type in (
        ("itemNumber", DataType.INTEGER), ("partNumber", DataType.STRING),
        ("yourPartNumber", DataType.STRING),
        ("partDescription", DataType.STRING),
        ("Quantity", DataType.INTEGER), ("unitOfMeasure", DataType.STRING),
        ("unitPrice", DataType.DECIMAL),
    ):
        item.add_attribute(attr_name, data_type)
    model.add_relationship("hasHeader", ["PurchaseOrder", "Header"])
    # "DeliverTo and InvoiceTo are ternary relationships between
    # PurchaseOrder, Address and Contact."
    model.add_relationship(
        "DeliverTo", ["PurchaseOrder", "Address", "Contact"]
    )
    model.add_relationship(
        "InvoiceTo", ["PurchaseOrder", "Address", "Contact"]
    )
    model.add_relationship("hasItems", ["PurchaseOrder", "Items"])
    model.add_relationship("itemList", ["Items", "Item"])
    return model


#: "For DIKE, we added linguistic similarity entries (in the LSPD) that
#: were similar to the linguistic similarity coefficients computed by
#: Cupid."
_LSPD_ENTRIES = [
    ("PONumber", "orderNum", 0.8),
    ("PODate", "orderDate", 0.8),
    ("POHeader", "Header", 0.85),
    ("count", "itemCount", 0.7),
    ("qty", "Quantity", 0.9),
    ("uom", "unitOfMeasure", 0.9),
    ("partno", "partNumber", 0.9),
    ("POLines", "Items", 0.6),
]


#: DIKE's merge threshold, tuned down for this experiment: the large
#: real-world vicinities (10-attribute entities, ternary relationships)
#: dilute the fixpoint scores relative to the canonical examples. The
#: paper itself notes per-tool parameter tuning was applied ("some of
#: the mapping results ... might not be the best achievable by them, in
#: that improvements may be possible by adjusting few of their
#: parameters", Section 9.3).
_DIKE_THRESHOLD = 0.4


def test_dike_column_of_table3(publish, benchmark):
    result = benchmark(
        lambda: DikeMatcher(
            lspd=LSPD(_LSPD_ENTRIES), merge_threshold=_DIKE_THRESHOLD
        ).match(_cidx_er(), _excel_er())
    )
    rows = [
        ["POHeader → Header",
         "Yes" if result.entity_merged("POHeader", "Header") else "No",
         "Yes"],
        ["Item → Item",
         "Yes" if result.entity_merged("Item", "Item") else "No", "Yes"],
        ["Contact → Contact",
         "Yes" if result.entity_merged("Contact", "Contact") else "No",
         "Yes"],
        ["POBillTo → InvoiceTo (context)",
         "No (address blocks merged together)"
         if result.entity_merged("POBillTo", "Address")
         and result.entity_merged("POShipTo", "Address") else "?",
         "No"],
    ]
    publish(
        "table3_dike",
        render_table(
            ["Table 3 row", "Our DIKE", "Paper's DIKE"],
            rows,
            title="E3b — DIKE on CIDX ↔ Excel",
        ),
    )
    assert result.entity_merged("POHeader", "Header")
    assert result.entity_merged("Contact", "Contact")
    assert result.entity_merged("Item", "Item")
    # The failure the paper reports: both CIDX address entities merge
    # with the single Excel Address — context rows unachievable.
    assert result.entity_merged("POShipTo", "Address")
    assert result.entity_merged("POBillTo", "Address")


#: MOMIS sense annotations ("the best possible meanings were chosen
#: for each of the schema elements").
_MOMIS_ANNOTATIONS = [
    ("POShipTo", "Address", 0.8),
    ("POBillTo", "Address", 0.8),
    ("POHeader", "Header", 0.9),
    ("POLines", "Items", 0.7),
    ("count", "itemCount", 0.8),
    ("qty", "Quantity", 0.9),
    ("uom", "unitOfMeasure", 0.9),
    ("partno", "partNumber", 0.9),
    ("line", "itemNumber", 0.6),
    ("PONumber", "orderNum", 0.8),
    ("PODate", "orderDate", 0.8),
]

_CIDX_OO = """
class PO (startAt: date)
class POHeader (PONumber: string (key), PODate: date)
class Contact (ContactName: string, ContactFunctionCode: string,
               ContactEmail: string, ContactPhone: string)
class POShipTo (Street1: string, Street2: string, Street3: string,
                Street4: string, City: string, StateProvince: string,
                PostalCode: string, Country: string, attn: string)
class POBillTo (Street1: string, Street2: string, Street3: string,
                Street4: string, City: string, StateProvince: string,
                PostalCode: string, Country: string, attn: string)
class POLines (count: integer)
class Item (line: integer, partno: string, qty: integer,
            uom: string, unitPrice: decimal)
"""

_EXCEL_OO = """
class PurchaseOrder (totalValue: decimal)
class Header (orderNum: string (key), orderDate: date,
              yourAccountCode: string, ourAccountCode: string)
class Address (street1: string, street2: string, street3: string,
               street4: string, city: string, stateProvince: string,
               postalCode: string, country: string)
class Contact (contactName: string, companyName: string,
               email: string, telephone: string)
class Items (itemCount: integer)
class Item (itemNumber: integer, partNumber: string,
            yourPartNumber: string, partDescription: string,
            Quantity: integer, unitOfMeasure: string,
            unitPrice: decimal)
"""


def test_momis_column_of_table3(publish, benchmark):
    source = parse_oo_model(_CIDX_OO, "CIDX")
    target = parse_oo_model(_EXCEL_OO, "Excel")
    result = benchmark(
        lambda: MomisMatcher(
            sense_annotations=_MOMIS_ANNOTATIONS
        ).match(source, target)
    )
    ship_with_address = result.clustered_together("POShipTo", "Address")
    bill_with_address = result.clustered_together("POBillTo", "Address")
    rows = [
        ["POHeader → Header",
         "Yes" if result.clustered_together("POHeader", "Header") else "No",
         "Yes"],
        ["Contact → Contact",
         "Yes" if result.clustered_together("Contact", "Contact") else "No",
         "Yes"],
        ["POBillTo / POShipTo vs InvoiceTo / DeliverTo",
         "single Address cluster"
         if ship_with_address and bill_with_address else "?",
         "clustered together with the Address element"],
    ]
    publish(
        "table3_momis",
        render_table(
            ["Table 3 row", "Our MOMIS", "Paper's MOMIS"],
            rows,
            title="E3b — MOMIS/ARTEMIS on CIDX ↔ Excel",
        ),
    )
    assert result.clustered_together("POHeader", "Header")
    assert result.clustered_together("Contact", "Contact")
    # The paper's failure mode: one undifferentiated address cluster.
    assert ship_with_address and bill_with_address


def test_only_cupid_achieves_context_rows(publish):
    """The Table 3 takeaway in one table: the context-dependent rows
    separate Cupid from both baselines."""
    cupid = run_cidx_excel()
    cupid_rows = {
        (row[0], row[1]): row[2] for row in cupid["element_rows"]
    }
    dike = DikeMatcher(
        lspd=LSPD(_LSPD_ENTRIES), merge_threshold=_DIKE_THRESHOLD
    ).match(_cidx_er(), _excel_er())
    momis = MomisMatcher(sense_annotations=_MOMIS_ANNOTATIONS).match(
        parse_oo_model(_CIDX_OO, "CIDX"), parse_oo_model(_EXCEL_OO, "Excel")
    )
    rows = [
        ["POBillTo → InvoiceTo",
         cupid_rows[("POBillTo", "InvoiceTo")],
         "No (merged with ShipTo/Address)",
         "No (one Address cluster)"],
        ["POShipTo → DeliverTo",
         cupid_rows[("POShipTo", "DeliverTo")],
         "No (merged with BillTo/Address)",
         "No (one Address cluster)"],
    ]
    publish(
        "table3_contrast",
        render_table(
            ["Context-dependent row", "Cupid", "DIKE", "MOMIS"],
            rows,
            title="E3b — the rows only Cupid achieves (Table 3)",
        ),
    )
    assert cupid_rows[("POBillTo", "InvoiceTo")] == "Yes"
    assert cupid_rows[("POShipTo", "DeliverTo")] == "Yes"
    assert dike.entity_merged("POBillTo", "Address")
    assert not momis.clustered_together("POLines", "Address")
