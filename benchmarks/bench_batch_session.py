"""One-vs-many batch matching: MatchSession vs independent matchers.

The paper's deployment scenarios (mediated-schema reuse, warehouse
loading) match one schema against N sources, repeatedly. This
benchmark quantifies what the session-oriented API buys on that shape:

* **independent** — N fresh ``CupidMatcher().match`` calls, the old
  one-shot API (every call re-prepares both schemas, cold memo).
* **session, first batch** — ``MatchSession.match_many`` with all
  :class:`PreparedSchema` artifacts prebuilt (per-schema preparation
  amortized; pair-level phases still run cold).
* **session, steady state** — the same ``match_many`` once every
  session cache tier is warm (prepared schemas + per-pair lsim
  tables + linguistic memo): only structure matching and mapping
  generation run per pair. This is the serving shape the acceptance
  floor targets: the same mediated schema matched against the same
  source fleet as data arrives.

All variants must produce bit-identical mappings; the steady state
must be >= 2x faster than the independent calls. Results go to
``benchmarks/results/BENCH_batch_session.json``.
"""

from __future__ import annotations

import json
import os
import time

from repro import CupidMatcher, MatchSession
from repro.datasets.generator import PerturbationConfig, SchemaGenerator
from repro.eval.reporting import render_table

#: Number of target schemas (acceptance criterion: N >= 8).
N_TARGETS = 8

#: Leaves per side of the synthetic workload.
SIZE = 40

#: Acceptance floor: steady-state match_many (cached PreparedSchemas,
#: warm session caches) vs N independent CupidMatcher.match calls.
REQUIRED_SPEEDUP = 2.0


def _workload(size=SIZE, n_targets=N_TARGETS, seed=11):
    generator = SchemaGenerator(seed=seed)
    source = generator.generate(n_leaves=size, max_depth=3)
    targets = []
    for i in range(n_targets):
        perturber = SchemaGenerator(seed=seed + 100 + i)
        copy, _ = perturber.perturb(
            source, PerturbationConfig(abbreviate=0.3, synonym=0.2)
        )
        targets.append(copy)
    return source, targets


def _mapping_signatures(results):
    return [
        sorted(
            (e.source_path, e.target_path, e.similarity)
            for e in r.leaf_mapping
        )
        for r in results
    ]


def _best_of(repeats, run):
    """Best wall time over ``repeats`` runs; returns (seconds, results)."""
    best_time = None
    results = None
    for _ in range(repeats):
        start = time.perf_counter()
        results = run()
        elapsed = time.perf_counter() - start
        if best_time is None or elapsed < best_time:
            best_time = elapsed
    return best_time, results


def test_batch_session_speedup(publish, results_dir):
    source, targets = _workload()

    # Independent one-shot API: a fresh matcher per call, as the old
    # monolithic interface forced on batch users.
    independent_time, independent_results = _best_of(
        2, lambda: [CupidMatcher().match(source, t) for t in targets]
    )

    session = MatchSession()
    for schema in [source] + targets:
        prepared = session.prepare(schema)
        # PreparedSchema is lazy; force the artifacts so the first
        # batch isolates pair-level work from per-schema preparation.
        prepared.linguistic, prepared.tree, prepared.leaf_layout

    first_start = time.perf_counter()
    first_results = session.match_many(source, targets)
    first_time = time.perf_counter() - first_start

    steady_time, steady_results = _best_of(
        2, lambda: session.match_many(source, targets)
    )

    # Per-feedback rerun: one hinted rematch per target, all cached.
    rematch_time, rematch_results = _best_of(
        1, lambda: [session.rematch(r) for r in first_results]
    )

    independent_sigs = _mapping_signatures(independent_results)
    assert independent_sigs == _mapping_signatures(first_results)
    assert independent_sigs == _mapping_signatures(steady_results)
    assert independent_sigs == _mapping_signatures(rematch_results)

    speedup_first = independent_time / first_time
    speedup_steady = independent_time / steady_time
    rows = [
        ["independent CupidMatcher x N",
         f"{independent_time * 1000:.1f} ms", "1.00x"],
        ["session match_many (prepared, first batch)",
         f"{first_time * 1000:.1f} ms", f"{speedup_first:.2f}x"],
        ["session match_many (steady state)",
         f"{steady_time * 1000:.1f} ms", f"{speedup_steady:.2f}x"],
        ["session rematch x N (cached pair)",
         f"{rematch_time * 1000:.1f} ms",
         f"{independent_time / rematch_time:.2f}x"],
    ]
    publish(
        "batch_session",
        render_table(
            ["Variant", "Wall time", "Speedup"],
            rows,
            title=(
                f"One-vs-{N_TARGETS} batch matching at {SIZE} leaves/side "
                "(identical mappings)"
            ),
        ),
    )

    record = {
        "n_targets": N_TARGETS,
        "leaves_per_side": SIZE,
        "independent_ms": round(independent_time * 1000, 2),
        "session_first_batch_ms": round(first_time * 1000, 2),
        "session_steady_ms": round(steady_time * 1000, 2),
        "session_rematch_ms": round(rematch_time * 1000, 2),
        "speedup_first_batch": round(speedup_first, 2),
        "speedup_steady": round(speedup_steady, 2),
        "required_speedup": REQUIRED_SPEEDUP,
        "identical_mappings": True,
        "session_cache": session.cache_info(),
    }
    json_path = os.path.join(results_dir, "BENCH_batch_session.json")
    with open(json_path, "w") as handle:
        json.dump(record, handle, indent=2)
    print(f"[written to {json_path}]")

    assert speedup_steady >= REQUIRED_SPEEDUP, (
        f"session match_many only {speedup_steady:.2f}x faster than "
        f"{N_TARGETS} independent matches (required {REQUIRED_SPEEDUP}x)"
    )


def test_batch_session_identical_on_fresh_session(publish):
    """A cold session (no pre-preparation at all) is also a pure win:
    never slower than independent calls, same mappings."""
    source, targets = _workload(size=30, n_targets=8)
    independent_time, independent_results = _best_of(
        2, lambda: [CupidMatcher().match(source, t) for t in targets]
    )
    session_time, session_results = _best_of(
        2, lambda: MatchSession().match_many(source, targets)
    )
    assert _mapping_signatures(independent_results) == (
        _mapping_signatures(session_results)
    )
    publish(
        "batch_session_cold",
        render_table(
            ["Variant", "Wall time"],
            [
                ["independent x 8", f"{independent_time * 1000:.1f} ms"],
                ["cold session match_many",
                 f"{session_time * 1000:.1f} ms"],
            ],
            title="Cold-session batch at 30 leaves/side",
        ),
    )
    assert session_time < independent_time
