"""E13 — tile-sharded parallel TreeMatch sweep.

Matches the sparse strong-link workload (two independently generated
schemas, ``thlow=0.0`` — the repository-search shape, and the shape
where the wsim plane is largest relative to the rest of the match)
across a worker-count axis, and publishes wall time, speedup over the
in-process baseline, and shard dispatch counters per row.

Honest-numbers policy: every row records what was actually measured on
this machine, alongside ``cpu_count``. The speedup acceptance floor
only applies when the machine has enough physical cores to express it
— on a 1-core container the 4-worker rows time-share one core and the
"speedup" is an IPC-overhead measurement, which is still worth
recording (it bounds the dispatch cost) but proves nothing about
scaling. Bit-identity, by contrast, is asserted unconditionally on
every row: sharded mappings must equal the serial ones exactly.
"""

from __future__ import annotations

import json
import os
import time

from repro import CupidMatcher
from repro.config import CupidConfig
from repro.datasets.generator import SchemaGenerator
from repro.eval.reporting import render_table

SIZES = [320, 640, 1280]
WORKER_AXIS = [1, 2, 4]

#: Acceptance floor (ISSUE 6): with 4 workers at 1280 leaves/side the
#: sharded match must be at least this much faster than in-process —
#: asserted only on machines with >= MIN_CORES_FOR_FLOOR cores.
REQUIRED_SPEEDUP_AT_1280 = 2.5
MIN_CORES_FOR_FLOOR = 4


def _sparse_workload(n_leaves):
    """Two independently generated schemas (no gold overlap)."""
    source = SchemaGenerator(seed=11).generate(
        name="mediated", n_leaves=n_leaves, max_depth=3
    )
    target = SchemaGenerator(seed=211).generate(
        name="candidate", n_leaves=n_leaves, max_depth=3
    )
    return source, target


def _timed_match(config, schema, copy, repeats=2):
    """Best-of-N match, returning (wall seconds, result)."""
    best_time = None
    result = None
    for _ in range(repeats):
        matcher = CupidMatcher(config=config)
        start = time.perf_counter()
        result = matcher.match(schema, copy)
        elapsed = time.perf_counter() - start
        if best_time is None or elapsed < best_time:
            best_time = elapsed
    return best_time, result


def _mapping_signature(mapping):
    return sorted(
        (e.source_path, e.target_path, e.similarity) for e in mapping
    )


def test_parallel_sweep(publish, results_dir):
    """Worker-axis sweep: publishes BENCH_parallel.json.

    One record per (size, workers) row plus a leading environment
    record; asserts bit-identical mappings on every sharded row and
    the speedup floor when the core count supports measuring it.
    """
    cores = os.cpu_count() or 1
    records = [
        {
            "cpu_count": cores,
            "speedup_floor": REQUIRED_SPEEDUP_AT_1280,
            "floor_applies": cores >= MIN_CORES_FOR_FLOOR,
            "note": (
                "speedups below are wall-clock ratios measured on this "
                "machine; on fewer cores than workers they measure IPC "
                "overhead, not scaling"
            ),
        }
    ]
    rows = []
    speedup_at_1280_w4 = None
    for size in SIZES:
        schema, copy = _sparse_workload(size)
        repeats = 2 if size <= 320 else 1
        baseline_time = None
        baseline_sig = None
        for workers in WORKER_AXIS:
            config = CupidConfig(
                store="flat", thlow=0.0, workers=workers
            )
            elapsed, result = _timed_match(
                config, schema, copy, repeats=repeats
            )
            sig = _mapping_signature(result.leaf_mapping)
            facts = result.treematch_result.sims.describe()
            if workers == 1:
                baseline_time = elapsed
                baseline_sig = sig
                speedup = 1.0
            else:
                assert sig == baseline_sig, (
                    f"{size} leaves/side: workers={workers} changed "
                    "the mapping"
                )
                speedup = baseline_time / elapsed
            record = {
                "size": size,
                "workers": workers,
                "total_ms": round(elapsed * 1000, 2),
                "speedup_vs_serial": round(speedup, 3),
                "parallel_scan_ops": facts.get("parallel_scan_ops", 0),
                "parallel_scale_ops": facts.get("parallel_scale_ops", 0),
                "parallel_shards_dispatched": facts.get(
                    "parallel_shards_dispatched", 0
                ),
                "parallel_stamp_merges": facts.get(
                    "parallel_stamp_merges", 0
                ),
            }
            records.append(record)
            rows.append(
                [
                    size,
                    workers,
                    f"{record['total_ms']:.0f} ms",
                    f"{speedup:.2f}x",
                    record["parallel_scan_ops"]
                    + record["parallel_scale_ops"],
                    record["parallel_stamp_merges"],
                ]
            )
            if size == 1280 and workers == 4:
                speedup_at_1280_w4 = speedup

    publish(
        "parallel_treematch",
        render_table(
            ["Leaves/side", "Workers", "Wall time", "Speedup",
             "Sharded ops", "Stamp merges"],
            rows,
            title=(
                f"Tile-sharded TreeMatch, sparse workload "
                f"(cpu_count={cores})"
            ),
        ),
    )
    json_path = os.path.join(results_dir, "BENCH_parallel.json")
    with open(json_path, "w") as handle:
        json.dump(records, handle, indent=2)
    print(f"[written to {json_path}]")

    assert speedup_at_1280_w4 is not None
    if cores >= MIN_CORES_FOR_FLOOR:
        assert speedup_at_1280_w4 >= REQUIRED_SPEEDUP_AT_1280, (
            f"4-worker speedup at 1280 leaves/side is "
            f"{speedup_at_1280_w4:.2f}x on a {cores}-core machine "
            f"(floor {REQUIRED_SPEEDUP_AT_1280}x)"
        )
