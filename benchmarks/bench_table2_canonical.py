"""E2 — Table 2: the canonical-example comparison grid.

Runs Cupid, DIKE, and MOMIS on the six Section 9.1 examples and prints
the Y/N grid next to the paper's reported outcomes. Every row must
match the paper (footnote letters included).
"""

from __future__ import annotations

import pytest

from repro.datasets.canonical import canonical_examples
from repro.eval.reporting import render_table
from repro.eval.runner import run_canonical_example


def _grid():
    rows = []
    verdicts = []
    for example in canonical_examples():
        verdict = run_canonical_example(example)
        verdicts.append(verdict)
        expected = verdict.expected
        rows.append(
            [
                verdict.example_id,
                verdict.title[:44],
                f"{verdict.cupid} ({expected['cupid']})",
                f"{verdict.dike} ({expected['dike']})",
                f"{verdict.momis} ({expected['momis']})",
            ]
        )
    return rows, verdicts


def test_table2_grid(publish, benchmark):
    rows, verdicts = benchmark(_grid)
    publish(
        "table2_canonical",
        render_table(
            ["#", "Example", "Cupid (paper)", "DIKE (paper)",
             "MOMIS (paper)"],
            rows,
            title="Table 2 — canonical examples, ours (paper's result)",
        ),
    )
    for verdict in verdicts:
        assert verdict.matches_paper(), (
            verdict.example_id, verdict.details
        )


def test_table2_without_auxiliary_input(publish):
    """The footnote rows degrade without LSPD/sense annotations,
    while Cupid stays Y throughout — conclusion 1 of Section 9.3."""
    rows = []
    for example in canonical_examples():
        verdict = run_canonical_example(example, with_aux=False)
        rows.append(
            [verdict.example_id, verdict.cupid, verdict.dike, verdict.momis]
        )
    publish(
        "table2_no_aux",
        render_table(
            ["#", "Cupid", "DIKE (no LSPD)", "MOMIS (no annotations)"],
            rows,
            title="Table 2 variant — auxiliary linguistic input withheld",
        ),
    )
    by_id = {row[0]: row for row in rows}
    assert all(row[1] == "Y" for row in rows)      # Cupid unaffected
    assert by_id[3][2].startswith("N")             # DIKE needs LSPD on ex3
    assert by_id[3][3].startswith("N")             # MOMIS needs senses
