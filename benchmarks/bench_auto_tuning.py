"""E10 — automatic parameter tuning (Section 10 future work).

"Tuning performance parameters in some cases requires expert knowledge
of these tools. Thus auto-tuning is an open problem, and a requirement
for a robust solution."

:func:`repro.core.tuning.auto_config` derives ``cinc`` from schema
depth (the saturation calibration: ``cinc ≥ (2 / cdec^(1/d))^(1/d)``)
and relaxes the pruning ratio when referential constraints are present.
This bench shows it reproduces the paper's two real-world experiments
with *no* manual parameter choices.
"""

from __future__ import annotations

import pytest

from repro.core.tuning import auto_config, tune_against_sample
from repro.datasets.cidx_excel import cidx_schema, excel_schema
from repro.datasets.figure2 import figure2_po, figure2_purchase_order
from repro.datasets.rdb_star import rdb_schema, star_schema
from repro.eval.reporting import render_table
from repro.eval.runner import run_cidx_excel, run_rdb_star


def test_auto_config_reproduces_real_world_experiments(publish, benchmark):
    def run():
        cidx_config = auto_config(cidx_schema(), excel_schema())
        cidx_out = run_cidx_excel(config=cidx_config)
        star_config = auto_config(rdb_schema(), star_schema())
        star_out = run_rdb_star(config=star_config)
        return cidx_config, cidx_out, star_config, star_out

    cidx_config, cidx_out, star_config, star_out = benchmark(run)
    rows = [
        ["CIDX ↔ Excel", f"cinc={cidx_config.cinc}",
         "Table 3 all Yes" if all(
             r[2] == "Yes" for r in cidx_out["element_rows"]
         ) else "FAILED",
         f"leaf recall {cidx_out['leaf_quality'].recall:.2f}"],
        ["RDB ↔ Star",
         f"cinc={star_config.cinc}, ratio={star_config.leaf_count_ratio}",
         "all claims Yes" if all(
             v == "Yes" for _, v in star_out["claim_rows"]
         ) else "FAILED",
         f"column recall {star_out['column_target_recall']:.2f}"],
    ]
    publish(
        "auto_tuning",
        render_table(
            ["Experiment", "Auto-derived parameters", "Outcome", "Quality"],
            rows,
            title="E10 — auto-tuned Cupid on the real-world experiments",
        ),
    )
    assert all(r[2] == "Yes" for r in cidx_out["element_rows"])
    assert cidx_out["leaf_quality"].recall == 1.0
    assert all(v == "Yes" for _, v in star_out["claim_rows"])
    assert star_out["column_target_recall"] == 1.0


def test_sample_tuning_finds_working_config(publish):
    """Human-in-the-loop variant: a 3-pair validated sample suffices."""
    sample = [
        ("POLines.Item.Qty", "Items.Item.Quantity"),
        ("POBillTo.City", "InvoiceTo.Address.City"),
        ("POShipTo.City", "DeliverTo.Address.City"),
    ]
    config, recall = tune_against_sample(
        figure2_po(), figure2_purchase_order(), sample
    )
    publish(
        "auto_tuning_sample",
        render_table(
            ["Tuned parameter", "Value"],
            [["cinc", config.cinc], ["wstruct", config.wstruct],
             ["sample recall", f"{recall:.2f}"]],
            title="E10 — grid search against a validated sample",
        ),
    )
    assert recall == 1.0
