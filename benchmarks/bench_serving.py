"""Serving throughput: sustained QPS and tail latency under mixed load.

The serving subsystem's bet is that a bounded session pool over one
shared pipeline can sustain concurrent search traffic *while the
corpus is being ingested* without torn reads or tail-latency
collapse. This benchmark prices that bet:

* **search clients** — ``N_CLIENTS`` threads each issuing
  ``SEARCHES_PER_CLIENT`` top-k searches through the
  :class:`~repro.serving.MatchService`;
* **ingest writer** — one thread feeding the remaining corpus through
  ``service.ingest`` (one index segment per batch, background
  compaction) while the searches run.

Reported: sustained search QPS, client-observed p50/p95/p99, the
service's own histogram percentiles (what ``/stats`` serves), and a
post-run parity check — after the dust settles, a search through the
(possibly compacted) segment index must be bit-identical to one over
a freshly rebuilt index. Results go to
``benchmarks/results/BENCH_serving.json``.

Single-core honesty: the GIL bounds CPU-parallel speedup, so the
interesting numbers here are *tail latency under contention* and
*consistency under concurrent mutation*, not a linear QPS scale-up.
``cpu_count`` is recorded alongside every figure.
"""

from __future__ import annotations

import json
import os
import shutil
import statistics
import tempfile
import threading
import time

from repro import SchemaRepository
from repro.datasets.generator import PerturbationConfig, SchemaGenerator
from repro.eval.reporting import render_table
from repro.repository.segments import SEGMENTS_DIR
from repro.serving import MatchService

#: Corpus: PRELOADED schemas ingested before traffic starts, INGESTED
#: more fed concurrently with the search load.
PRELOADED = 16
INGESTED = 8

N_CLIENTS = 4
SEARCHES_PER_CLIENT = 25
K = 3
CANDIDATES = 6


def _corpus():
    generator = SchemaGenerator(seed=900)
    return [
        generator.generate(
            name=f"serve{i:02d}",
            n_leaves=10 + (i % 3) * 4,
            max_depth=3,
            name_repetition=0.4,
        )
        for i in range(PRELOADED + INGESTED)
    ]


def _queries(corpus, n=4):
    queries = []
    for i in range(n):
        perturber = SchemaGenerator(seed=7000 + i)
        query, _ = perturber.perturb(
            corpus[i],
            PerturbationConfig(abbreviate=0.3, synonym=0.25),
        )
        query.name = f"query{i}"
        queries.append(query)
    return queries


def _search_signature(search):
    return [
        (
            m.schema_id,
            m.score,
            sorted(
                (e.source_path, e.target_path, e.similarity)
                for e in m.result.leaf_mapping
            ),
        )
        for m in search
    ]


def _pct(latencies, fraction):
    ordered = sorted(latencies)
    rank = max(0, min(len(ordered) - 1,
                      round(fraction * len(ordered)) - 1))
    return ordered[rank]


def test_serving_throughput(publish, results_dir):
    corpus = _corpus()
    queries = _queries(corpus)
    root = tempfile.mkdtemp(prefix="bench_serving_")
    try:
        repository = SchemaRepository(root)
        repository.config = repository.config.replace(
            segment_compaction_threshold=4
        )
        for schema in corpus[:PRELOADED]:
            repository.ingest(schema)
        repository.save()

        latencies = []
        latency_lock = threading.Lock()
        errors = []
        with MatchService(
            repository, sessions=0, queue_depth=256
        ) as service:
            sessions = service.health()["sessions"]

            def search_client(client):
                mine = []
                try:
                    for i in range(SEARCHES_PER_CLIENT):
                        query = queries[(client + i) % len(queries)]
                        start = time.perf_counter()
                        service.search(query, k=K, candidates=CANDIDATES)
                        mine.append(time.perf_counter() - start)
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)
                with latency_lock:
                    latencies.extend(mine)

            def ingest_writer():
                try:
                    for schema in corpus[PRELOADED:]:
                        service.ingest(schema)
                        time.sleep(0.01)  # spread across the window
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [
                threading.Thread(target=search_client, args=(c,))
                for c in range(N_CLIENTS)
            ] + [threading.Thread(target=ingest_writer)]
            window_start = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            window = time.perf_counter() - window_start
            service_stats = service.stats()
        assert not errors, errors

        total_searches = N_CLIENTS * SEARCHES_PER_CLIENT
        assert len(latencies) == total_searches
        qps = total_searches / window

        # Post-run parity: the segment index the service left behind
        # (flushed + possibly background-compacted) must answer
        # searches bit-identically to an index rebuilt from the
        # artifact files.
        settled = SchemaRepository.open(root)
        assert len(settled) == PRELOADED + INGESTED
        segment_files = len(os.listdir(os.path.join(root, SEGMENTS_DIR)))
        settled_sigs = [
            _search_signature(settled.search(q, k=K, candidates=CANDIDATES))
            for q in queries
        ]
        for name in os.listdir(os.path.join(root, SEGMENTS_DIR)):
            os.remove(os.path.join(root, SEGMENTS_DIR, name))
        rebuilt = SchemaRepository.open(root)
        assert rebuilt.cache_info()["index_rebuilds"] == 1
        parity = settled_sigs == [
            _search_signature(rebuilt.search(q, k=K, candidates=CANDIDATES))
            for q in queries
        ]
        assert parity, "segment index diverged from rebuilt index"
    finally:
        shutil.rmtree(root, ignore_errors=True)

    client_p50 = _pct(latencies, 0.50) * 1000.0
    client_p95 = _pct(latencies, 0.95) * 1000.0
    client_p99 = _pct(latencies, 0.99) * 1000.0
    mean_ms = statistics.fmean(latencies) * 1000.0
    search_hist = service_stats["endpoints"]["search"]
    ingest_hist = service_stats["endpoints"]["ingest"]

    rows = [
        ["search", str(total_searches), f"{mean_ms:.1f} ms",
         f"{client_p50:.1f} ms", f"{client_p99:.1f} ms"],
        ["ingest (concurrent)", str(ingest_hist["count"]),
         f"{ingest_hist['mean_ms']:.1f} ms",
         f"{ingest_hist['p50_ms']:.1f} ms",
         f"{ingest_hist['p99_ms']:.1f} ms"],
    ]
    publish(
        "serving_throughput",
        render_table(
            ["Endpoint", "Requests", "Mean", "p50", "p99"],
            rows,
            title=(
                f"Mixed serving load: {qps:.1f} search QPS over "
                f"{N_CLIENTS} clients + concurrent ingest "
                f"({sessions} sessions, cpu_count={os.cpu_count()})"
            ),
        ),
    )

    record = {
        "corpus_preloaded": PRELOADED,
        "corpus_ingested_concurrently": INGESTED,
        "n_clients": N_CLIENTS,
        "searches_per_client": SEARCHES_PER_CLIENT,
        "k": K,
        "candidates": CANDIDATES,
        "sessions": sessions,
        "cpu_count": os.cpu_count(),
        "window_s": round(window, 3),
        "search_qps": round(qps, 2),
        "client_latency_ms": {
            "mean": round(mean_ms, 3),
            "p50": round(client_p50, 3),
            "p95": round(client_p95, 3),
            "p99": round(client_p99, 3),
        },
        "service_histogram_search": search_hist,
        "service_histogram_ingest": ingest_hist,
        "segment_files_after_run": segment_files,
        "rebuild_parity": parity,
    }
    with open(
        os.path.join(results_dir, "BENCH_serving.json"), "w"
    ) as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
