"""E9 — scalability sweep (Section 10 lists this as required future
work; we provide the analysis on synthetic schemas).

Matches a generated schema against a perturbed copy at increasing
sizes, reporting wall time, compared pairs, and match quality, so the
O(n²·L²)-ish cost of the post-order double loop is visible — and the
effect of leaf-count pruning on it.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro import CupidMatcher
from repro.config import CupidConfig
from repro.datasets.generator import PerturbationConfig, SchemaGenerator
from repro.eval.metrics import evaluate_mapping
from repro.eval.reporting import render_table

SIZES = [10, 20, 40, 80, 160]

#: Sizes used for the dense-vs-reference engine comparison (the
#: reference engine is O(N²·L²) with big constants; 160 leaves/side is
#: already >1 s per reference run).
ENGINE_COMPARISON_SIZES = [20, 40, 80, 160]

#: Acceptance floor: at 80 leaves/side the dense engine must be at
#: least this much faster than the reference engine in the same run.
REQUIRED_SPEEDUP_AT_80 = 3.0

#: Repetition axis of the engine comparison: name-repetition factors
#: the duplicate-heavy records sweep (0.0 = every name distinct).
REPETITION_AXIS = [0.0, 0.9]

#: Duplicate-heavy workload shape for the linguistic-kernel ablation:
#: wide, shallow trees (star-schema-like fact tables) whose element
#: names repeat with this probability.
KERNEL_REPETITION = 0.9
KERNEL_SIZES = [80, 160, 320]

#: Acceptance floor: at the largest duplicate-heavy size the dense
#: engine's linguistic phase with the distinct-name kernel must beat
#: the same engine without it (strictest baseline: the memoized
#: per-element-pair path) by this factor.
REQUIRED_KERNEL_SPEEDUP = 2.0


def _workload(n_leaves, seed=11, repetition=0.0):
    generator = SchemaGenerator(seed=seed)
    schema = generator.generate(
        n_leaves=n_leaves, max_depth=3, name_repetition=repetition
    )
    copy, gold = generator.perturb(
        schema, PerturbationConfig(abbreviate=0.3, synonym=0.2)
    )
    return schema, copy, gold


def _repetition_workload(n_leaves, repetition=KERNEL_REPETITION, seed=11):
    """Duplicate-heavy wide workload (see KERNEL_REPETITION)."""
    generator = SchemaGenerator(seed=seed)
    schema = generator.generate(
        n_leaves=n_leaves, max_depth=2, fanout=12,
        name_repetition=repetition,
    )
    copy, gold = generator.perturb(
        schema, PerturbationConfig(abbreviate=0.3, synonym=0.2)
    )
    return schema, copy, gold


def test_scalability_sweep(publish):
    rows = []
    for size in SIZES:
        schema, copy, gold = _workload(size)
        start = time.perf_counter()
        result = CupidMatcher().match(schema, copy)
        elapsed = time.perf_counter() - start
        quality = evaluate_mapping(result.leaf_mapping, gold)
        rows.append(
            [
                size,
                f"{elapsed * 1000:.1f} ms",
                result.treematch_result.compared_pairs,
                result.treematch_result.pruned_pairs,
                f"{quality.recall:.2f}",
            ]
        )
    publish(
        "scalability",
        render_table(
            ["Leaves/side", "Wall time", "Pairs compared",
             "Pairs pruned", "Recall"],
            rows,
            title="E9 — scalability on synthetic schemas",
        ),
    )
    # Quality should not collapse with size.
    assert all(float(row[4]) >= 0.7 for row in rows)


def _timed_match(config, schema, copy, repeats=2):
    """Best-of-N match, returning (wall seconds, result)."""
    best_time = None
    result = None
    for _ in range(repeats):
        matcher = CupidMatcher(config=config)
        start = time.perf_counter()
        result = matcher.match(schema, copy)
        elapsed = time.perf_counter() - start
        if best_time is None or elapsed < best_time:
            best_time = elapsed
    return best_time, result


def _mapping_signature(mapping):
    return sorted(
        (e.source_path, e.target_path, e.similarity) for e in mapping
    )


def test_engine_comparison(publish, results_dir):
    """Dense vs reference engines: wall time, per-phase breakdown.

    Sweeps both size and the name-repetition axis (duplicate-heavy
    schemas exercise the distinct-name kernel), publishes the rendered
    table and BENCH_scalability_engines.json (the machine-readable
    speedup trajectory), and asserts the acceptance floor: >= 3x at 80
    leaves/side, with identical mappings.
    """
    rows = []
    records = []
    speedup_at_80 = None
    for size in ENGINE_COMPARISON_SIZES:
        for repetition in REPETITION_AXIS:
            schema, copy, _ = _workload(size, repetition=repetition)
            engine_results = {}
            for engine in ("dense", "reference"):
                config = CupidConfig(engine=engine)
                elapsed, result = _timed_match(config, schema, copy)
                engine_results[engine] = (elapsed, result)
                timings = result.timings
                rows.append(
                    [
                        size,
                        repetition,
                        engine,
                        f"{timings['linguistic'] * 1000:.1f} ms",
                        f"{timings['treematch'] * 1000:.1f} ms",
                        f"{timings['mapping'] * 1000:.1f} ms",
                        f"{elapsed * 1000:.1f} ms",
                        result.treematch_result.compared_pairs,
                    ]
                )
                records.append(
                    {
                        "size": size,
                        "repetition": repetition,
                        "engine": engine,
                        "backend": getattr(
                            result.treematch_result.sims, "backend", "dict"
                        ),
                        "linguistic_ms": round(
                            timings["linguistic"] * 1000, 2
                        ),
                        "treematch_ms": round(
                            timings["treematch"] * 1000, 2
                        ),
                        "mapping_ms": round(timings["mapping"] * 1000, 2),
                        "total_ms": round(elapsed * 1000, 2),
                        "compared_pairs": (
                            result.treematch_result.compared_pairs
                        ),
                        "scaled_pairs": result.treematch_result.scaled_pairs,
                    }
                )
            dense_time, dense_result = engine_results["dense"]
            reference_time, reference_result = engine_results["reference"]
            # The dense engine must be a pure speedup: same mappings.
            assert _mapping_signature(dense_result.leaf_mapping) == (
                _mapping_signature(reference_result.leaf_mapping)
            )
            speedup = reference_time / dense_time
            records.append(
                {
                    "size": size,
                    "repetition": repetition,
                    "speedup_dense_vs_reference": round(speedup, 2),
                }
            )
            rows.append(
                [size, repetition, "speedup", "", "", "",
                 f"{speedup:.2f}x", ""]
            )
            if size == 80 and repetition == 0.0:
                speedup_at_80 = speedup

    publish(
        "scalability_engines",
        render_table(
            ["Leaves/side", "Repetition", "Engine", "Linguistic",
             "TreeMatch", "Mapping", "Total", "Pairs"],
            rows,
            title="Dense vs reference engine (per-phase wall time)",
        ),
    )
    json_path = os.path.join(results_dir, "BENCH_scalability_engines.json")
    with open(json_path, "w") as handle:
        json.dump(records, handle, indent=2)
    print(f"[written to {json_path}]")

    assert speedup_at_80 is not None
    assert speedup_at_80 >= REQUIRED_SPEEDUP_AT_80, (
        f"dense engine only {speedup_at_80:.2f}x faster than reference at "
        f"80 leaves/side (required {REQUIRED_SPEEDUP_AT_80}x)"
    )


def test_linguistic_kernel_speedup(publish, results_dir):
    """Distinct-name kernel ablation on the duplicate-heavy workload.

    Same dense engine, kernel on vs off (the memoized per-element-pair
    path — the strictest baseline), plus the reference engine for
    scale. Mappings must be identical everywhere; at the largest size
    the kernel must cut the linguistic phase by
    REQUIRED_KERNEL_SPEEDUP x. Publishes the table and
    BENCH_linguistic_kernel.json.
    """
    rows = []
    records = []
    kernel_speedup_at_largest = None
    largest = max(KERNEL_SIZES)
    for size in KERNEL_SIZES:
        schema, copy, _ = _repetition_workload(size)
        variants = [
            ("dense+kernel", CupidConfig()),
            ("dense no-kernel", CupidConfig(linguistic_kernel=False)),
        ]
        if size <= 160:  # the reference engine is ~20x slower here
            variants.append(("reference", CupidConfig(engine="reference")))
        timings = {}
        results = {}
        for label, config in variants:
            elapsed, result = _timed_match(config, schema, copy)
            linguistic_ms = result.timings["linguistic"] * 1000
            timings[label] = linguistic_ms
            results[label] = result
            record = {
                "size": size,
                "repetition": KERNEL_REPETITION,
                "variant": label,
                "linguistic_ms": round(linguistic_ms, 2),
                "total_ms": round(elapsed * 1000, 2),
            }
            stats = getattr(result.lsim_table, "kernel_stats", None)
            if stats:
                record.update(
                    vocab_names=(
                        stats["vocab_source_names"],
                        stats["vocab_target_names"],
                    ),
                    kernel_hit_rate=round(stats["kernel_hit_rate"], 4),
                    kernel_element_pairs=stats["kernel_element_pairs"],
                    kernel_distinct_name_pairs=(
                        stats["kernel_distinct_name_pairs"]
                    ),
                )
            records.append(record)
            rows.append(
                [size, label, f"{linguistic_ms:.1f} ms",
                 f"{elapsed * 1000:.1f} ms"]
            )
        baseline = _mapping_signature(results["dense+kernel"].leaf_mapping)
        for label, result in results.items():
            assert _mapping_signature(result.leaf_mapping) == baseline, (
                f"{label} changed the mapping at size {size}"
            )
        speedup = timings["dense no-kernel"] / timings["dense+kernel"]
        records.append(
            {
                "size": size,
                "repetition": KERNEL_REPETITION,
                "kernel_linguistic_speedup": round(speedup, 2),
            }
        )
        rows.append([size, "kernel speedup", f"{speedup:.2f}x", ""])
        if size == largest:
            kernel_speedup_at_largest = speedup

    publish(
        "scalability_kernel",
        render_table(
            ["Leaves/side", "Variant", "Linguistic", "Total"],
            rows,
            title=(
                "Distinct-name kernel on the duplicate-heavy workload "
                f"(name repetition {KERNEL_REPETITION})"
            ),
        ),
    )
    json_path = os.path.join(results_dir, "BENCH_linguistic_kernel.json")
    with open(json_path, "w") as handle:
        json.dump(records, handle, indent=2)
    print(f"[written to {json_path}]")

    assert kernel_speedup_at_largest is not None
    assert kernel_speedup_at_largest >= REQUIRED_KERNEL_SPEEDUP, (
        f"distinct-name kernel only {kernel_speedup_at_largest:.2f}x on "
        f"the linguistic phase at {largest} leaves/side "
        f"(required {REQUIRED_KERNEL_SPEEDUP}x)"
    )


#: Blocked-store sweep shapes. The dense rows match a schema against a
#: perturbed copy of itself (near-root pairs cross thhigh, so cinc
#: context scaling writes the whole plane — the blocked store's worst
#: case); the sparse rows are the repository-search shape (two
#: unrelated schemas, down-weighting off), where almost nothing crosses
#: the context thresholds and the plane stays virtual.
BLOCKED_DENSE_SIZES = [80, 160, 320]
BLOCKED_SPARSE_SIZES = [160, 320, 640, 1280]

#: Acceptance floors (ISSUE 4): at 1280 leaves/side the sparse
#: workload must hold >= 4x less store memory than flat, and at every
#: size <= 320 the blocked store must stay within 1.3x of flat's wall
#: time on both workload shapes.
REQUIRED_MEMORY_RATIO_AT_1280 = 4.0
BLOCKED_TIME_LIMIT = 1.3


def _sparse_workload(n_leaves):
    """Two independently generated schemas (no gold overlap)."""
    source = SchemaGenerator(seed=11).generate(
        name="mediated", n_leaves=n_leaves, max_depth=3
    )
    target = SchemaGenerator(seed=211).generate(
        name="candidate", n_leaves=n_leaves, max_depth=3
    )
    return source, target


def test_blocked_store_sweep(publish, results_dir):
    """Blocked vs flat store: peak store memory + wall time sweep.

    Publishes BENCH_blocked_store.json with one record per (workload,
    size, store) plus the per-size ratios, and asserts the acceptance
    floors above. Mappings must be identical on every row.
    """
    rows = []
    records = []
    memory_ratio_at_1280 = None

    sweeps = [
        ("context-dense", BLOCKED_DENSE_SIZES, {}, _workload),
        (
            "sparse-strong-link",
            BLOCKED_SPARSE_SIZES,
            {"thlow": 0.0},
            None,
        ),
    ]
    for workload_name, sizes, config_kwargs, make in sweeps:
        for size in sizes:
            if make is not None:
                schema, copy, _ = make(size)
            else:
                schema, copy = _sparse_workload(size)
            repeats = 2 if size <= 320 else 1
            per_store = {}
            for store in ("flat", "blocked"):
                config = CupidConfig(store=store, **config_kwargs)
                elapsed, result = _timed_match(
                    config, schema, copy, repeats=repeats
                )
                sims = result.treematch_result.sims
                record = {
                    "workload": workload_name,
                    "size": size,
                    "store": store,
                    "total_ms": round(elapsed * 1000, 2),
                    "store_bytes": sims.store_bytes(),
                }
                if store == "blocked":
                    facts = sims.describe()
                    record.update(
                        block_size=facts["block_size"],
                        tiles_total=facts["tiles_total"],
                        tiles_allocated=facts["tiles_allocated"],
                        tiles_touched=facts["tiles_touched"],
                        overlay_cells=facts["overlay_cells"],
                    )
                records.append(record)
                per_store[store] = (elapsed, result, record)
            flat_time, flat_result, flat_record = per_store["flat"]
            blocked_time, blocked_result, blocked_record = (
                per_store["blocked"]
            )
            # The blocked store must be a pure re-layout: same mappings.
            assert _mapping_signature(blocked_result.leaf_mapping) == (
                _mapping_signature(flat_result.leaf_mapping)
            ), f"{workload_name}@{size}: blocked changed the mapping"
            memory_ratio = (
                flat_record["store_bytes"] / blocked_record["store_bytes"]
            )
            time_ratio = blocked_time / flat_time
            if size <= 320 and time_ratio > BLOCKED_TIME_LIMIT:
                # Sub-second rows are at the mercy of scheduler noise;
                # re-measure once with more repeats before judging.
                flat_time, _ = _timed_match(
                    CupidConfig(store="flat", **config_kwargs),
                    schema, copy, repeats=4,
                )
                blocked_time, _ = _timed_match(
                    CupidConfig(store="blocked", **config_kwargs),
                    schema, copy, repeats=4,
                )
                time_ratio = blocked_time / flat_time
                flat_record["total_ms"] = round(flat_time * 1000, 2)
                blocked_record["total_ms"] = round(blocked_time * 1000, 2)
            # Rows render after the possible re-measure so the table
            # and its ratio line always agree.
            for record in (flat_record, blocked_record):
                rows.append(
                    [
                        workload_name,
                        size,
                        record["store"],
                        f"{record['total_ms']:.1f} ms",
                        f"{record['store_bytes'] / 1024:.0f} KiB",
                        record.get("tiles_allocated", ""),
                    ]
                )
            records.append(
                {
                    "workload": workload_name,
                    "size": size,
                    "memory_ratio_flat_over_blocked": round(
                        memory_ratio, 2
                    ),
                    "time_ratio_blocked_over_flat": round(time_ratio, 3),
                }
            )
            rows.append(
                [
                    workload_name, size, "ratios",
                    f"{time_ratio:.2f}x time",
                    f"{memory_ratio:.1f}x less mem", "",
                ]
            )
            if size <= 320:
                assert time_ratio <= BLOCKED_TIME_LIMIT, (
                    f"blocked store {time_ratio:.2f}x slower than flat "
                    f"on {workload_name} at {size} leaves/side "
                    f"(limit {BLOCKED_TIME_LIMIT}x)"
                )
            if workload_name == "sparse-strong-link" and size == 1280:
                memory_ratio_at_1280 = memory_ratio

    publish(
        "blocked_store",
        render_table(
            ["Workload", "Leaves/side", "Store", "Wall time",
             "Store memory", "Tiles"],
            rows,
            title="Blocked vs flat similarity store (memory + time)",
        ),
    )
    json_path = os.path.join(results_dir, "BENCH_blocked_store.json")
    with open(json_path, "w") as handle:
        json.dump(records, handle, indent=2)
    print(f"[written to {json_path}]")

    assert memory_ratio_at_1280 is not None
    assert memory_ratio_at_1280 >= REQUIRED_MEMORY_RATIO_AT_1280, (
        f"blocked store only {memory_ratio_at_1280:.1f}x lower store "
        f"memory at 1280 leaves/side "
        f"(required {REQUIRED_MEMORY_RATIO_AT_1280}x)"
    )


def test_stdlib_fallback_speedup(publish):
    """The pure-stdlib dense backend must also beat the reference
    engine (no hard numpy dependency for the speedup)."""
    schema, copy, _ = _workload(80)
    stdlib_time, stdlib_result = _timed_match(
        CupidConfig(engine="dense", dense_backend="stdlib"), schema, copy
    )
    reference_time, reference_result = _timed_match(
        CupidConfig(engine="reference"), schema, copy
    )
    assert stdlib_result.treematch_result.sims.backend == "stdlib"
    assert _mapping_signature(stdlib_result.leaf_mapping) == (
        _mapping_signature(reference_result.leaf_mapping)
    )
    publish(
        "scalability_stdlib_fallback",
        render_table(
            ["Setting", "Wall time"],
            [
                ["dense (stdlib arrays)", f"{stdlib_time * 1000:.1f} ms"],
                ["reference", f"{reference_time * 1000:.1f} ms"],
            ],
            title="Pure-stdlib dense fallback at 80 leaves/side",
        ),
    )
    assert stdlib_time < reference_time


def test_match_throughput_small(benchmark):
    schema, copy, _ = _workload(20)
    matcher = CupidMatcher()
    benchmark(matcher.match, schema, copy)


def test_match_throughput_medium(benchmark):
    schema, copy, _ = _workload(60)
    matcher = CupidMatcher()
    benchmark(matcher.match, schema, copy)


def test_pruning_speeds_up_large_match(publish):
    schema, copy, gold = _workload(80)
    pruned_matcher = CupidMatcher()
    unpruned_matcher = CupidMatcher(
        config=CupidConfig(prune_by_leaf_count=False)
    )

    start = time.perf_counter()
    pruned = pruned_matcher.match(schema, copy)
    pruned_time = time.perf_counter() - start

    start = time.perf_counter()
    unpruned = unpruned_matcher.match(schema, copy)
    unpruned_time = time.perf_counter() - start

    publish(
        "scalability_pruning",
        render_table(
            ["Setting", "Wall time", "Pairs compared"],
            [
                ["pruning on", f"{pruned_time * 1000:.1f} ms",
                 pruned.treematch_result.compared_pairs],
                ["pruning off", f"{unpruned_time * 1000:.1f} ms",
                 unpruned.treematch_result.compared_pairs],
            ],
            title="Pruning effect at 80 leaves/side",
        ),
    )
    assert pruned.treematch_result.compared_pairs < (
        unpruned.treematch_result.compared_pairs
    )
