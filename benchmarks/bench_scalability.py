"""E9 — scalability sweep (Section 10 lists this as required future
work; we provide the analysis on synthetic schemas).

Matches a generated schema against a perturbed copy at increasing
sizes, reporting wall time, compared pairs, and match quality, so the
O(n²·L²)-ish cost of the post-order double loop is visible — and the
effect of leaf-count pruning on it.
"""

from __future__ import annotations

import time

import pytest

from repro import CupidMatcher
from repro.config import CupidConfig
from repro.datasets.generator import PerturbationConfig, SchemaGenerator
from repro.eval.metrics import evaluate_mapping
from repro.eval.reporting import render_table

SIZES = [10, 20, 40, 80]


def _workload(n_leaves, seed=11):
    generator = SchemaGenerator(seed=seed)
    schema = generator.generate(n_leaves=n_leaves, max_depth=3)
    copy, gold = generator.perturb(
        schema, PerturbationConfig(abbreviate=0.3, synonym=0.2)
    )
    return schema, copy, gold


def test_scalability_sweep(publish):
    rows = []
    for size in SIZES:
        schema, copy, gold = _workload(size)
        start = time.perf_counter()
        result = CupidMatcher().match(schema, copy)
        elapsed = time.perf_counter() - start
        quality = evaluate_mapping(result.leaf_mapping, gold)
        rows.append(
            [
                size,
                f"{elapsed * 1000:.1f} ms",
                result.treematch_result.compared_pairs,
                result.treematch_result.pruned_pairs,
                f"{quality.recall:.2f}",
            ]
        )
    publish(
        "scalability",
        render_table(
            ["Leaves/side", "Wall time", "Pairs compared",
             "Pairs pruned", "Recall"],
            rows,
            title="E9 — scalability on synthetic schemas",
        ),
    )
    # Quality should not collapse with size.
    assert all(float(row[4]) >= 0.7 for row in rows)


def test_match_throughput_small(benchmark):
    schema, copy, _ = _workload(20)
    matcher = CupidMatcher()
    benchmark(matcher.match, schema, copy)


def test_match_throughput_medium(benchmark):
    schema, copy, _ = _workload(60)
    matcher = CupidMatcher()
    benchmark(matcher.match, schema, copy)


def test_pruning_speeds_up_large_match(publish):
    schema, copy, gold = _workload(80)
    pruned_matcher = CupidMatcher()
    unpruned_matcher = CupidMatcher(
        config=CupidConfig(prune_by_leaf_count=False)
    )

    start = time.perf_counter()
    pruned = pruned_matcher.match(schema, copy)
    pruned_time = time.perf_counter() - start

    start = time.perf_counter()
    unpruned = unpruned_matcher.match(schema, copy)
    unpruned_time = time.perf_counter() - start

    publish(
        "scalability_pruning",
        render_table(
            ["Setting", "Wall time", "Pairs compared"],
            [
                ["pruning on", f"{pruned_time * 1000:.1f} ms",
                 pruned.treematch_result.compared_pairs],
                ["pruning off", f"{unpruned_time * 1000:.1f} ms",
                 unpruned.treematch_result.compared_pairs],
            ],
            title="Pruning effect at 80 leaves/side",
        ),
    )
    assert pruned.treematch_result.compared_pairs < (
        unpruned.treematch_result.compared_pairs
    )
