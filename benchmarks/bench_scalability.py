"""E9 — scalability sweep (Section 10 lists this as required future
work; we provide the analysis on synthetic schemas).

Matches a generated schema against a perturbed copy at increasing
sizes, reporting wall time, compared pairs, and match quality, so the
O(n²·L²)-ish cost of the post-order double loop is visible — and the
effect of leaf-count pruning on it.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro import CupidMatcher
from repro.config import CupidConfig
from repro.datasets.generator import PerturbationConfig, SchemaGenerator
from repro.eval.metrics import evaluate_mapping
from repro.eval.reporting import render_table

SIZES = [10, 20, 40, 80, 160]

#: Sizes used for the dense-vs-reference engine comparison (the
#: reference engine is O(N²·L²) with big constants; 160 leaves/side is
#: already >1 s per reference run).
ENGINE_COMPARISON_SIZES = [20, 40, 80, 160]

#: Acceptance floor: at 80 leaves/side the dense engine must be at
#: least this much faster than the reference engine in the same run.
REQUIRED_SPEEDUP_AT_80 = 3.0


def _workload(n_leaves, seed=11):
    generator = SchemaGenerator(seed=seed)
    schema = generator.generate(n_leaves=n_leaves, max_depth=3)
    copy, gold = generator.perturb(
        schema, PerturbationConfig(abbreviate=0.3, synonym=0.2)
    )
    return schema, copy, gold


def test_scalability_sweep(publish):
    rows = []
    for size in SIZES:
        schema, copy, gold = _workload(size)
        start = time.perf_counter()
        result = CupidMatcher().match(schema, copy)
        elapsed = time.perf_counter() - start
        quality = evaluate_mapping(result.leaf_mapping, gold)
        rows.append(
            [
                size,
                f"{elapsed * 1000:.1f} ms",
                result.treematch_result.compared_pairs,
                result.treematch_result.pruned_pairs,
                f"{quality.recall:.2f}",
            ]
        )
    publish(
        "scalability",
        render_table(
            ["Leaves/side", "Wall time", "Pairs compared",
             "Pairs pruned", "Recall"],
            rows,
            title="E9 — scalability on synthetic schemas",
        ),
    )
    # Quality should not collapse with size.
    assert all(float(row[4]) >= 0.7 for row in rows)


def _timed_match(config, schema, copy, repeats=2):
    """Best-of-N match, returning (wall seconds, result)."""
    best_time = None
    result = None
    for _ in range(repeats):
        matcher = CupidMatcher(config=config)
        start = time.perf_counter()
        result = matcher.match(schema, copy)
        elapsed = time.perf_counter() - start
        if best_time is None or elapsed < best_time:
            best_time = elapsed
    return best_time, result


def _mapping_signature(mapping):
    return sorted(
        (e.source_path, e.target_path, e.similarity) for e in mapping
    )


def test_engine_comparison(publish, results_dir):
    """Dense vs reference engines: wall time, per-phase breakdown.

    Publishes both the rendered table and BENCH_scalability_engines.json
    (the machine-readable speedup trajectory), and asserts the
    acceptance floor: >= 3x at 80 leaves/side, with identical mappings.
    """
    rows = []
    records = []
    speedup_at_80 = None
    for size in ENGINE_COMPARISON_SIZES:
        schema, copy, _ = _workload(size)
        engine_results = {}
        for engine in ("dense", "reference"):
            config = CupidConfig(engine=engine)
            elapsed, result = _timed_match(config, schema, copy)
            engine_results[engine] = (elapsed, result)
            timings = result.timings
            rows.append(
                [
                    size,
                    engine,
                    f"{timings['linguistic'] * 1000:.1f} ms",
                    f"{timings['treematch'] * 1000:.1f} ms",
                    f"{timings['mapping'] * 1000:.1f} ms",
                    f"{elapsed * 1000:.1f} ms",
                    result.treematch_result.compared_pairs,
                ]
            )
            records.append(
                {
                    "size": size,
                    "engine": engine,
                    "backend": getattr(
                        result.treematch_result.sims, "backend", "dict"
                    ),
                    "linguistic_ms": round(timings["linguistic"] * 1000, 2),
                    "treematch_ms": round(timings["treematch"] * 1000, 2),
                    "mapping_ms": round(timings["mapping"] * 1000, 2),
                    "total_ms": round(elapsed * 1000, 2),
                    "compared_pairs": (
                        result.treematch_result.compared_pairs
                    ),
                    "scaled_pairs": result.treematch_result.scaled_pairs,
                }
            )
        dense_time, dense_result = engine_results["dense"]
        reference_time, reference_result = engine_results["reference"]
        # The dense engine must be a pure speedup: same mappings.
        assert _mapping_signature(dense_result.leaf_mapping) == (
            _mapping_signature(reference_result.leaf_mapping)
        )
        speedup = reference_time / dense_time
        records.append(
            {"size": size, "speedup_dense_vs_reference": round(speedup, 2)}
        )
        rows.append([size, "speedup", "", "", "", f"{speedup:.2f}x", ""])
        if size == 80:
            speedup_at_80 = speedup

    publish(
        "scalability_engines",
        render_table(
            ["Leaves/side", "Engine", "Linguistic", "TreeMatch",
             "Mapping", "Total", "Pairs"],
            rows,
            title="Dense vs reference engine (per-phase wall time)",
        ),
    )
    json_path = os.path.join(results_dir, "BENCH_scalability_engines.json")
    with open(json_path, "w") as handle:
        json.dump(records, handle, indent=2)
    print(f"[written to {json_path}]")

    assert speedup_at_80 is not None
    assert speedup_at_80 >= REQUIRED_SPEEDUP_AT_80, (
        f"dense engine only {speedup_at_80:.2f}x faster than reference at "
        f"80 leaves/side (required {REQUIRED_SPEEDUP_AT_80}x)"
    )


def test_stdlib_fallback_speedup(publish):
    """The pure-stdlib dense backend must also beat the reference
    engine (no hard numpy dependency for the speedup)."""
    schema, copy, _ = _workload(80)
    stdlib_time, stdlib_result = _timed_match(
        CupidConfig(engine="dense", dense_backend="stdlib"), schema, copy
    )
    reference_time, reference_result = _timed_match(
        CupidConfig(engine="reference"), schema, copy
    )
    assert stdlib_result.treematch_result.sims.backend == "stdlib"
    assert _mapping_signature(stdlib_result.leaf_mapping) == (
        _mapping_signature(reference_result.leaf_mapping)
    )
    publish(
        "scalability_stdlib_fallback",
        render_table(
            ["Setting", "Wall time"],
            [
                ["dense (stdlib arrays)", f"{stdlib_time * 1000:.1f} ms"],
                ["reference", f"{reference_time * 1000:.1f} ms"],
            ],
            title="Pure-stdlib dense fallback at 80 leaves/side",
        ),
    )
    assert stdlib_time < reference_time


def test_match_throughput_small(benchmark):
    schema, copy, _ = _workload(20)
    matcher = CupidMatcher()
    benchmark(matcher.match, schema, copy)


def test_match_throughput_medium(benchmark):
    schema, copy, _ = _workload(60)
    matcher = CupidMatcher()
    benchmark(matcher.match, schema, copy)


def test_pruning_speeds_up_large_match(publish):
    schema, copy, gold = _workload(80)
    pruned_matcher = CupidMatcher()
    unpruned_matcher = CupidMatcher(
        config=CupidConfig(prune_by_leaf_count=False)
    )

    start = time.perf_counter()
    pruned = pruned_matcher.match(schema, copy)
    pruned_time = time.perf_counter() - start

    start = time.perf_counter()
    unpruned = unpruned_matcher.match(schema, copy)
    unpruned_time = time.perf_counter() - start

    publish(
        "scalability_pruning",
        render_table(
            ["Setting", "Wall time", "Pairs compared"],
            [
                ["pruning on", f"{pruned_time * 1000:.1f} ms",
                 pruned.treematch_result.compared_pairs],
                ["pruning off", f"{unpruned_time * 1000:.1f} ms",
                 unpruned.treematch_result.compared_pairs],
            ],
            title="Pruning effect at 80 leaves/side",
        ),
    )
    assert pruned.treematch_result.compared_pairs < (
        unpruned.treematch_result.compared_pairs
    )
