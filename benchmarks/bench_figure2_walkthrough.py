"""E7 — the Figure 2 / Section 4 walk-through.

Every sentence of the running-example narrative is checked: thesaurus
matches (Qty/Quantity, UoM/UnitOfMeasure), the synonym-driven context
disambiguation (Bill≈Invoice, Ship≈Deliver), and the non-leaf mappings.
"""

from __future__ import annotations

import pytest

from repro import CupidMatcher
from repro.datasets.figure2 import figure2_po, figure2_purchase_order
from repro.eval.reporting import render_table


def _run():
    return CupidMatcher().match(figure2_po(), figure2_purchase_order())


NARRATIVE = [
    ("Qty → Quantity (abbreviation)",
     "PO.POLines.Item.Qty", "PurchaseOrder.Items.Item.Quantity"),
    ("UoM → UnitOfMeasure (acronym)",
     "PO.POLines.Item.UoM", "PurchaseOrder.Items.Item.UnitOfMeasure"),
    ("Count → ItemCount",
     "PO.POLines.Count", "PurchaseOrder.Items.ItemCount"),
    ("POBillTo.City → InvoiceTo...City (Bill ≈ Invoice)",
     "PO.POBillTo.City", "PurchaseOrder.InvoiceTo.Address.City"),
    ("POBillTo.Street → InvoiceTo...Street",
     "PO.POBillTo.Street", "PurchaseOrder.InvoiceTo.Address.Street"),
    ("POShipTo.City → DeliverTo...City (Ship ≈ Deliver)",
     "PO.POShipTo.City", "PurchaseOrder.DeliverTo.Address.City"),
    ("POShipTo.Street → DeliverTo...Street",
     "PO.POShipTo.Street", "PurchaseOrder.DeliverTo.Address.Street"),
]


def test_figure2_walkthrough(publish, benchmark):
    result = benchmark(_run)
    pairs = result.leaf_mapping.path_pairs()
    rows = []
    for label, source, target in NARRATIVE:
        rows.append([label, "Yes" if (source, target) in pairs else "No"])
    publish(
        "figure2_walkthrough",
        render_table(
            ["Section 4 narrative", "Reproduced"],
            rows,
            title="Figure 2 walk-through",
        ),
    )
    assert all(row[1] == "Yes" for row in rows)


def test_figure2_no_context_crossover(publish):
    result = _run()
    pairs = result.leaf_mapping.path_pairs()
    crossovers = [
        ("PO.POBillTo.City", "PurchaseOrder.DeliverTo.Address.City"),
        ("PO.POShipTo.City", "PurchaseOrder.InvoiceTo.Address.City"),
        ("PO.POBillTo.Street", "PurchaseOrder.DeliverTo.Address.Street"),
        ("PO.POShipTo.Street", "PurchaseOrder.InvoiceTo.Address.Street"),
    ]
    for pair in crossovers:
        assert pair not in pairs


def test_figure2_nonleaf_mapping(publish):
    result = _run()
    pairs = result.nonleaf_mapping.path_pairs()
    expected = [
        ("PO", "PurchaseOrder"),
        ("PO.POBillTo", "PurchaseOrder.InvoiceTo"),
        ("PO.POShipTo", "PurchaseOrder.DeliverTo"),
        ("PO.POLines.Item", "PurchaseOrder.Items.Item"),
    ]
    rows = [
        [f"{s} → {t}", "Yes" if (s, t) in pairs else "No"]
        for s, t in expected
    ]
    publish(
        "figure2_nonleaf",
        render_table(["Non-leaf mapping", "Found"], rows),
    )
    assert all(row[1] == "Yes" for row in rows)
