"""E14 — batched distinct-name ns kernel: batched vs scalar sweep.

Times the linguistic phase (normalization + the factored lsim kernel)
on the sparse independent-pair workload with the batched ns
computation on and off, asserts the two produce identical lsim
tables, and records the floor file
(``results/BENCH_ns_kernel_floor.json``) that
``tests/test_perf_ns_kernel.py`` gates tier-1 against. The floor is
~20x the measured batched time — a regression tripwire, not a
benchmark; the honest numbers live in the published table.
"""

from __future__ import annotations

import json
import os
import time

from repro.config import CupidConfig
from repro.datasets.generator import SchemaGenerator
from repro.eval.reporting import render_table
from repro.linguistic.lexicon import builtin_thesaurus
from repro.linguistic.matcher import LinguisticMatcher

SIZES = [160, 320]

#: The floor file records the smallest size (fast enough for tier-1).
FLOOR_SIZE = 160
FLOOR_HEADROOM = 20.0


def _workload(n_leaves):
    source = SchemaGenerator(seed=11).generate(
        name="mediated", n_leaves=n_leaves, max_depth=3
    )
    target = SchemaGenerator(seed=211).generate(
        name="candidate", n_leaves=n_leaves, max_depth=3
    )
    return source, target


def _timed_compute(config, source, target, repeats=3):
    best = None
    result = None
    for _ in range(repeats):
        matcher = LinguisticMatcher(builtin_thesaurus(), config)
        start = time.perf_counter()
        result = matcher.compute(source, target)
        elapsed = (time.perf_counter() - start) * 1000.0
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def test_ns_kernel_sweep(publish, results_dir):
    """Batched-vs-scalar sweep: publishes the table and rewrites
    BENCH_ns_kernel_floor.json from the measured batched time."""
    rows = []
    floor_batched_ms = None
    for size in SIZES:
        source, target = _workload(size)
        batched_ms, batched = _timed_compute(
            CupidConfig(thlow=0.0, linguistic_batch_ns=True),
            source, target,
        )
        scalar_ms, scalar = _timed_compute(
            CupidConfig(thlow=0.0, linguistic_batch_ns=False),
            source, target,
        )
        assert sorted(batched.items()) == sorted(scalar.items()), (
            f"{size} leaves/side: batched ns diverged from scalar"
        )
        rows.append(
            [
                size,
                f"{batched_ms:.0f} ms",
                f"{scalar_ms:.0f} ms",
                f"{scalar_ms / batched_ms:.2f}x",
            ]
        )
        if size == FLOOR_SIZE:
            floor_batched_ms = batched_ms

    publish(
        "ns_kernel",
        render_table(
            ["Leaves/side", "Batched ns", "Scalar ns", "Speedup"],
            rows,
            title="Linguistic phase, batched vs scalar ns (sparse pair)",
        ),
    )

    assert floor_batched_ms is not None
    record = {
        "description": (
            "Floor for the batched distinct-name ns linguistic phase; "
            "gated by tests/test_perf_ns_kernel.py"
        ),
        "workload": {
            "seed_source": 11,
            "seed_target": 211,
            "n_leaves": FLOOR_SIZE,
            "max_depth": 3,
        },
        "floor_ms": round(floor_batched_ms * FLOOR_HEADROOM),
        "measured_batched_ms": round(floor_batched_ms, 1),
        "note": (
            f"floor is ~{FLOOR_HEADROOM:.0f}x the measured batched "
            "linguistic-phase time — an order-of-magnitude tripwire, "
            "not a benchmark"
        ),
    }
    json_path = os.path.join(results_dir, "BENCH_ns_kernel_floor.json")
    with open(json_path, "w") as handle:
        json.dump(record, handle, indent=2)
    print(f"[written to {json_path}]")
