"""Observability overhead: disarmed must be free, armed is recorded.

The tracer's design bet is that a permanently-compiled-in
instrumentation layer costs nothing while disarmed — every site is
one module-global read plus an ``is None`` branch. This benchmark
holds that bet on the duplicate-heavy repetition workload (the same
shape ``BENCH_repetition_floor.json`` gates):

* **disarmed**: steady-state ``match_many`` is measured back-to-back
  against the *pre-instrumentation* PR 9 tip (``git archive`` of the
  commit just before any tracing site existed, run on the same
  machine in the same minute, interleaved so load noise hits both
  variants equally) and must stay within 2% of it;
* **armed**: measured the same way and recorded honestly — span
  allocation on every stage/pass/op is *not* free and nothing here
  pretends otherwise. The armed number is reported, not gated (the
  knob for bounding it is sampling, an open ROADMAP item).

On a checkout without git history (tarball exports) the live
baseline is unavailable; the run still records every number against
the pinned historical measurement but skips the gate rather than
flake on cross-run machine-load drift.

Publishes ``BENCH_observability.json``.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import tempfile

import pytest

#: Last mainline commit before the tracing sites landed.
PR9_COMMIT = "d614364"

#: Steady-state best-of-7 ``match_many`` on the repetition workload,
#: measured on the growth container at the PR 9 tip before any
#: instrumentation existed. Context only — the gate below compares
#: against a live re-measurement of the same commit, because pinned
#: cross-run numbers drift with machine load far more than 2%.
PR9_RECORDED_MS = 128.109

MAX_DISARMED_OVERHEAD = 0.02
ROUNDS = 3  # interleaved subprocess rounds per variant
REPEATS = 7  # in-process steady-state repeats per round

WORKLOAD = {
    "n_leaves": 80,
    "max_depth": 2,
    "fanout": 12,
    "name_repetition": 0.9,
    "n_targets": 4,
    "seed": 11,
    "perturbation": {"abbreviate": 0.3, "synonym": 0.2},
}

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Run in a subprocess per measurement so the PR 9 baseline and the
#: instrumented tree see identical (fresh-interpreter) conditions.
_MEASURE_SCRIPT = """
import json, sys, time
from repro import MatchSession
from repro.datasets.generator import PerturbationConfig, SchemaGenerator

spec = json.loads(sys.argv[1])
repeats = int(sys.argv[2])
generator = SchemaGenerator(seed=spec["seed"])
source = generator.generate(
    n_leaves=spec["n_leaves"], max_depth=spec["max_depth"],
    fanout=spec["fanout"], name_repetition=spec["name_repetition"],
)
perturbation = PerturbationConfig(**spec["perturbation"])
targets = []
for i in range(spec["n_targets"]):
    perturber = SchemaGenerator(seed=spec["seed"] + 100 + i)
    copy, _ = perturber.perturb(source, perturbation)
    targets.append(copy)
session = MatchSession()
results = session.match_many(source, targets)  # warm caches
best = None
for _ in range(repeats):
    start = time.perf_counter()
    session.match_many(source, targets)
    elapsed = (time.perf_counter() - start) * 1000.0
    if best is None or elapsed < best:
        best = elapsed
signature = [
    sorted(
        (e.source_path, e.target_path, round(e.similarity, 12))
        for e in result.leaf_mapping
    )
    for result in results
]
print(json.dumps({"best_ms": best, "signature": signature}))
"""


def _pr9_tree():
    """Materialize the pre-instrumentation tree via git archive.

    Returns ``(root, src_dir)`` — ``root`` for cleanup, ``src_dir``
    for PYTHONPATH — or ``(None, None)`` when history is unavailable.
    """
    if shutil.which("git") is None:
        return None, None
    tree = tempfile.mkdtemp(prefix="pr9-baseline-")
    try:
        archive = subprocess.run(
            ["git", "-C", _REPO_ROOT, "archive", PR9_COMMIT, "src"],
            capture_output=True, check=True,
        )
        subprocess.run(
            ["tar", "-x", "-C", tree],
            input=archive.stdout, check=True,
        )
    except (subprocess.CalledProcessError, OSError):
        shutil.rmtree(tree, ignore_errors=True)
        return None, None
    return tree, os.path.join(tree, "src")


def _measure(src_dir, armed=False):
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir
    env.pop("REPRO_FORCE_TRACE", None)
    if armed:
        env["REPRO_FORCE_TRACE"] = "1"
    completed = subprocess.run(
        [
            sys.executable, "-c", _MEASURE_SCRIPT,
            json.dumps(WORKLOAD), str(REPEATS),
        ],
        capture_output=True, text=True, check=True, env=env,
    )
    return json.loads(completed.stdout)


def test_observability_overhead(publish, results_dir):
    here = os.path.join(_REPO_ROOT, "src")
    pr9, pr9_src = _pr9_tree()
    try:
        baseline_ms = None
        disarmed_ms = None
        armed_ms = None
        signatures = {}
        # Interleave variants round-robin so a load spike penalizes
        # all of them, not whichever ran while it lasted.
        for _ in range(ROUNDS):
            if pr9 is not None:
                sample = _measure(pr9_src)
                signatures["baseline"] = sample["signature"]
                if baseline_ms is None or sample["best_ms"] < baseline_ms:
                    baseline_ms = sample["best_ms"]
            sample = _measure(here)
            signatures["disarmed"] = sample["signature"]
            if disarmed_ms is None or sample["best_ms"] < disarmed_ms:
                disarmed_ms = sample["best_ms"]
            sample = _measure(here, armed=True)
            signatures["armed"] = sample["signature"]
            if armed_ms is None or sample["best_ms"] < armed_ms:
                armed_ms = sample["best_ms"]
    finally:
        if pr9 is not None:
            shutil.rmtree(pr9, ignore_errors=True)

    # Tracing is observational only: identical mappings disarmed,
    # armed, and (when measurable) at the pre-instrumentation tip.
    assert signatures["disarmed"] == signatures["armed"]
    if pr9 is not None:
        assert signatures["baseline"] == signatures["disarmed"]

    # The armed variant must actually have collected spans in-process
    # (REPRO_FORCE_TRACE bootstraps arming at import).
    trace_check = subprocess.run(
        [
            sys.executable, "-c",
            "from repro.obs import trace; import sys; "
            "sys.exit(0 if trace.armed() else 1)",
        ],
        env={**os.environ, "PYTHONPATH": here, "REPRO_FORCE_TRACE": "1"},
    )
    assert trace_check.returncode == 0

    reference_ms = baseline_ms if baseline_ms is not None else PR9_RECORDED_MS
    disarmed_overhead = disarmed_ms / reference_ms - 1.0
    armed_overhead = armed_ms / reference_ms - 1.0

    record = {
        "description": (
            "Tracing overhead on the repetition workload (steady-state "
            "best-of-7 match_many per subprocess round, min over "
            f"{ROUNDS} interleaved rounds, ms). The disarmed gate "
            "compares against a live same-machine re-measurement of "
            "the pre-instrumentation PR 9 tip; pr9_recorded_ms is the "
            "historical pin kept for context. The armed number is "
            "recorded honestly and not gated — bounding it is a "
            "sampling knob (open ROADMAP item), not a constant-factor "
            "fight."
        ),
        "workload": WORKLOAD,
        "pr9_commit": PR9_COMMIT,
        "pr9_recorded_ms": PR9_RECORDED_MS,
        "pr9_live_baseline_ms": (
            round(baseline_ms, 3) if baseline_ms is not None else None
        ),
        "disarmed_ms": round(disarmed_ms, 3),
        "armed_ms": round(armed_ms, 3),
        "disarmed_overhead_pct": round(disarmed_overhead * 100.0, 2),
        "armed_overhead_pct": round(armed_overhead * 100.0, 2),
        "max_disarmed_overhead_pct": MAX_DISARMED_OVERHEAD * 100.0,
        "gate_ran": pr9 is not None,
        "cpu_count": os.cpu_count() or 1,
    }
    path = os.path.join(results_dir, "BENCH_observability.json")
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")

    baseline_label = (
        f"{baseline_ms:9.3f}" if baseline_ms is not None
        else f"{PR9_RECORDED_MS:9.3f} (pinned; git history unavailable)"
    )
    publish(
        "observability_overhead",
        "\n".join([
            "tracing overhead, repetition workload "
            f"(best of {ROUNDS} interleaved rounds, ms)",
            f"  pr9 baseline : {baseline_label}",
            f"  disarmed     : {disarmed_ms:9.3f}  "
            f"({disarmed_overhead * 100.0:+.2f}%)",
            f"  armed        : {armed_ms:9.3f}  "
            f"({armed_overhead * 100.0:+.2f}%)",
        ]),
    )

    if pr9 is None:
        pytest.skip(
            "git history unavailable — overhead recorded against the "
            "pinned baseline, gate skipped"
        )
    assert disarmed_overhead <= MAX_DISARMED_OVERHEAD, (
        f"disarmed tracing costs {disarmed_overhead * 100.0:.2f}% over "
        f"the live PR 9 baseline ({disarmed_ms:.3f} ms vs "
        f"{baseline_ms:.3f} ms) — the None-check discipline has been "
        "broken somewhere on the hot path"
    )
