"""Repository top-k search: candidate pruning recall vs brute force.

The repository subsystem's bet is that an inverted vocabulary index
can dismiss most of a corpus before TreeMatch ever runs. This
benchmark prices that bet on a generated corpus of schema *families*
(a base schema plus perturbed siblings — the shape of real catalogs,
where feeds and revisions of the same source accumulate):

* **brute force** — ``search(query, k)`` over every corpus schema
  (the ground truth, equivalent to ``match_many`` over the corpus);
* **pruned** — ``search(query, k, candidates=C)`` with C = 25% of the
  corpus: the index ranks all schemas, the pipeline matches only the
  top C.

Acceptance (ISSUE 5): recall@k >= 0.95 against brute force while
matching <= 25% of the corpus, on a >= 64-schema corpus — and a
reopened (persisted) repository must return bit-identical results to
the in-memory pass. Results go to
``benchmarks/results/BENCH_repository.json``.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time

from repro import SchemaRepository
from repro.datasets.generator import PerturbationConfig, SchemaGenerator
from repro.eval.reporting import render_table

#: Corpus shape: FAMILIES base schemas, each with VARIANTS perturbed
#: siblings ingested alongside it.
FAMILIES = 16
VARIANTS = 3
CORPUS_SIZE = FAMILIES * (1 + VARIANTS)  # 64

#: Queries: fresh perturbations of the first N_QUERIES family bases.
N_QUERIES = 6

#: Search depth and candidate budget (25% of the corpus).
K = 4
CANDIDATES = CORPUS_SIZE // 4

#: Acceptance floors.
REQUIRED_RECALL = 0.95
MAX_MATCHED_FRACTION = 0.25


def _perturbation() -> PerturbationConfig:
    return PerturbationConfig(
        abbreviate=0.3, synonym=0.25, prefix_suffix=0.1, retype=0.05
    )


def _build_corpus():
    """FAMILIES × (base + VARIANTS perturbed siblings), varied sizes."""
    corpus = []
    for family in range(FAMILIES):
        generator = SchemaGenerator(seed=1000 + family)
        base = generator.generate(
            name=f"family{family:02d}",
            n_leaves=16 + (family % 4) * 6,
            max_depth=3,
            name_repetition=0.4,
        )
        corpus.append(base)
        for variant in range(VARIANTS):
            perturber = SchemaGenerator(seed=2000 + family * 10 + variant)
            sibling, _ = perturber.perturb(base, _perturbation())
            sibling.name = f"family{family:02d}v{variant}"
            corpus.append(sibling)
    return corpus


def _build_queries(corpus):
    queries = []
    for i in range(N_QUERIES):
        base = corpus[i * (1 + VARIANTS)]
        perturber = SchemaGenerator(seed=5000 + i)
        query, _ = perturber.perturb(base, _perturbation())
        query.name = f"query{i}"
        queries.append(query)
    return queries


def _search_signature(search):
    return [
        (
            m.schema_id,
            m.score,
            sorted(
                (e.source_path, e.target_path, e.similarity)
                for e in m.result.leaf_mapping
            ),
        )
        for m in search
    ]


def test_repository_search_recall(publish, results_dir):
    corpus = _build_corpus()
    queries = _build_queries(corpus)
    root = tempfile.mkdtemp(prefix="bench_repository_")
    try:
        ingest_start = time.perf_counter()
        with SchemaRepository(root) as repo:
            for schema in corpus:
                repo.ingest(schema)
        ingest_time = time.perf_counter() - ingest_start
        assert len(SchemaRepository.open(root)) == CORPUS_SIZE

        repo = SchemaRepository.open(root)
        per_query = []
        brute_total = 0.0
        pruned_total = 0.0
        recall_sum = 0.0
        pruned_signatures = []
        for query in queries:
            start = time.perf_counter()
            brute = repo.search(query, k=K)
            brute_total += time.perf_counter() - start

            start = time.perf_counter()
            pruned = repo.search(query, k=K, candidates=CANDIDATES)
            pruned_total += time.perf_counter() - start
            pruned_signatures.append(_search_signature(pruned))

            truth = {m.schema_id for m in brute}
            found = {m.schema_id for m in pruned}
            recall = len(truth & found) / K
            recall_sum += recall
            per_query.append({
                "query": query.name,
                "recall_at_k": recall,
                "top_brute": [m.schema_id for m in brute],
                "top_pruned": [m.schema_id for m in pruned],
                "pruned_stats": pruned.stats,
            })
        repo.save()
        recall_at_k = recall_sum / len(queries)
        matched_fraction = CANDIDATES / CORPUS_SIZE

        # Persistence parity: a brand-new repository object over the
        # same directory (simulating a fresh process, simcache warm)
        # must reproduce the pruned searches bit-identically.
        reopened = SchemaRepository.open(root)
        reopen_start = time.perf_counter()
        reopen_identical = all(
            _search_signature(
                reopened.search(query, k=K, candidates=CANDIDATES)
            ) == signature
            for query, signature in zip(queries, pruned_signatures)
        )
        reopen_time = time.perf_counter() - reopen_start
        simcache_preloaded = reopened.cache_info()[
            "simcache_preloaded_entries"
        ]
    finally:
        shutil.rmtree(root, ignore_errors=True)

    brute_ms = brute_total / len(queries) * 1000.0
    pruned_ms = pruned_total / len(queries) * 1000.0
    reopen_ms = reopen_time / len(queries) * 1000.0
    rows = [
        ["brute force (match all)", CORPUS_SIZE, f"{brute_ms:.1f} ms",
         "1.000"],
        [f"index-pruned (top {CANDIDATES})", CANDIDATES,
         f"{pruned_ms:.1f} ms", f"{recall_at_k:.3f}"],
        ["index-pruned, reopened repo", CANDIDATES,
         f"{reopen_ms:.1f} ms",
         "bit-identical" if reopen_identical else "DIFFERS"],
    ]
    publish(
        "repository_search",
        render_table(
            ["Search strategy", "Schemas matched", "Per query",
             "Recall@k"],
            rows,
            title=(
                f"Top-{K} repository search over {CORPUS_SIZE} schemas "
                f"({len(queries)} queries, candidates={CANDIDATES})"
            ),
        ),
    )

    record = {
        "corpus_size": CORPUS_SIZE,
        "families": FAMILIES,
        "variants_per_family": VARIANTS,
        "n_queries": len(queries),
        "k": K,
        "candidates": CANDIDATES,
        "matched_fraction": matched_fraction,
        "recall_at_k": round(recall_at_k, 4),
        "required_recall": REQUIRED_RECALL,
        "max_matched_fraction": MAX_MATCHED_FRACTION,
        "ingest_s": round(ingest_time, 3),
        "brute_force_ms_per_query": round(brute_ms, 2),
        "pruned_ms_per_query": round(pruned_ms, 2),
        "reopened_ms_per_query": round(reopen_ms, 2),
        "speedup_vs_brute": round(brute_ms / pruned_ms, 2),
        "reopen_bit_identical": reopen_identical,
        "simcache_preloaded_entries": simcache_preloaded,
        "per_query": per_query,
    }
    json_path = os.path.join(results_dir, "BENCH_repository.json")
    with open(json_path, "w") as handle:
        json.dump(record, handle, indent=2)
    print(f"[written to {json_path}]")

    assert matched_fraction <= MAX_MATCHED_FRACTION
    assert recall_at_k >= REQUIRED_RECALL, (
        f"pruned search recall@{K} {recall_at_k:.3f} below the "
        f"{REQUIRED_RECALL} floor while matching "
        f"{matched_fraction:.0%} of the corpus"
    )
    assert reopen_identical, (
        "reopened repository search differs from the in-memory pass"
    )
