"""E5 — Section 9.3, conclusion 3: linguistic-only matching on
full path names.

The paper: "While in the CIDX-Excel example only 2 of the correct
matching XML attribute pairs went undetected, there were as many as 7
false positive mappings. In the RDB-Star example only 68% of the
correct mappings were detected." Our substrate reproduces the shape
(few misses + several false positives on CIDX-Excel; roughly two-thirds
recall on RDB-Star) and full Cupid must dominate the path-name matcher
on both.
"""

from __future__ import annotations

import pytest

from repro.baselines.pathname import PathNameMatcher
from repro.datasets.cidx_excel import (
    cidx_excel_gold,
    cidx_schema,
    excel_schema,
)
from repro.datasets.rdb_star import (
    rdb_schema,
    rdb_star_column_gold,
    star_schema,
)
from repro.eval.reporting import render_table
from repro.eval.runner import run_cidx_excel, run_rdb_star
from repro.linguistic.lexicon import (
    builtin_thesaurus,
    paper_experiment_thesaurus,
)


def _pathname_cidx():
    matcher = PathNameMatcher(thesaurus=paper_experiment_thesaurus())
    mapping = matcher.match(cidx_schema(), excel_schema())
    gold = cidx_excel_gold()
    return {
        "missed": len(gold.missing_pairs(mapping)),
        "false_positives": len(gold.false_positives(mapping)),
        "recall": len(gold.found_pairs(mapping)) / len(gold),
    }


def _pathname_rdb_star():
    matcher = PathNameMatcher(thesaurus=builtin_thesaurus())
    mapping = matcher.match(rdb_schema(), star_schema())
    gold = rdb_star_column_gold()
    return {"target_recall": gold.target_recall(mapping)}


def test_linguistic_only_cidx_excel(publish, benchmark):
    stats = benchmark(_pathname_cidx)
    rows = [
        ["missed gold attribute pairs", stats["missed"], "2"],
        ["false positives", stats["false_positives"], "7"],
    ]
    publish(
        "linguistic_only_cidx",
        render_table(
            ["Metric", "Ours", "Paper"],
            rows,
            title="E5 — path-name-only matching, CIDX ↔ Excel",
        ),
    )
    # Shape assertions: few misses, a handful of false positives.
    assert stats["missed"] <= 4
    assert 4 <= stats["false_positives"] <= 12


def test_linguistic_only_rdb_star(publish, benchmark):
    stats = benchmark(_pathname_rdb_star)
    publish(
        "linguistic_only_rdb_star",
        render_table(
            ["Metric", "Ours", "Paper"],
            [["correct mappings detected",
              f"{stats['target_recall']:.0%}", "68%"]],
            title="E5 — path-name-only matching, RDB ↔ Star",
        ),
    )
    # Partial recall, clearly below full Cupid's 100%: the shape holds
    # (our builtin thesaurus with concept tagging is somewhat stronger
    # than the paper's, hence the upper band).
    assert 0.55 <= stats["target_recall"] <= 0.9


def test_full_cupid_dominates_pathname(publish):
    """Structure matching must add real value over names alone."""
    cupid_cidx = run_cidx_excel()["leaf_quality"]
    pathname_cidx = _pathname_cidx()
    assert cupid_cidx.recall > pathname_cidx["recall"]

    cupid_star = run_rdb_star()["column_target_recall"]
    pathname_star = _pathname_rdb_star()["target_recall"]
    assert cupid_star > pathname_star
    publish(
        "linguistic_only_vs_cupid",
        render_table(
            ["Experiment", "Full Cupid", "Path-name only"],
            [
                ["CIDX-Excel attribute recall",
                 f"{cupid_cidx.recall:.2f}",
                 f"{pathname_cidx['recall']:.2f}"],
                ["RDB-Star column target recall",
                 f"{cupid_star:.2f}", f"{pathname_star:.2f}"],
            ],
            title="Structure matching vs linguistic-only",
        ),
    )
