"""E4 — Figure 8 / Section 9.2: the RDB ↔ Star warehouse match.

Exercises referential constraints as join views end to end: the joins
of Territories⋈Region and Orders⋈OrderDetails must be matchable to the
Geography and Sales tables, and the three Star PostalCode columns all
map back to Customers.PostalCode.
"""

from __future__ import annotations

import pytest

from repro.eval.reporting import render_table
from repro.eval.runner import run_rdb_star


def test_rdb_star_claims(publish, benchmark):
    out = benchmark(run_rdb_star)
    rows = [list(row) for row in out["claim_rows"]]
    publish(
        "rdb_star_claims",
        render_table(
            ["Section 9.2 claim", "Achieved"],
            rows,
            title="RDB ↔ Star — the paper's 'good mapping' claims",
        ),
    )
    assert all(row[1] == "Yes" for row in rows)


def test_rdb_star_column_quality(publish):
    out = run_rdb_star()
    quality = out["column_quality"]
    lines = [
        "RDB ↔ Star column-level results",
        f"  target recall (alternatives-aware): "
        f"{out['column_target_recall']:.2f}",
        f"  raw: {quality.summary()}",
        f"  unmatched targets: {out['unmatched_columns'] or 'none'}",
    ]
    publish("rdb_star_columns", "\n".join(lines))
    assert out["column_target_recall"] == 1.0


def test_join_views_are_load_bearing(publish):
    """Ablation inside E4: switching off join-view augmentation loses
    the join-dependent claims (the Geography row at minimum)."""
    with_joins = run_rdb_star(use_refint_joins=True)
    without = run_rdb_star(use_refint_joins=False)
    rows = []
    for (claim, v_with), (_, v_without) in zip(
        with_joins["claim_rows"], without["claim_rows"]
    ):
        rows.append([claim, v_with, v_without])
    publish(
        "rdb_star_join_ablation",
        render_table(
            ["Claim", "With join views", "Without"],
            rows,
            title="Join-view ablation (Section 8.3 benefit)",
        ),
    )
    geography = [r for r in rows if "Geography" in r[0]][0]
    assert geography[1] == "Yes"
    assert geography[2] == "No"
