"""E6 + E8 — ablations of the design choices DESIGN.md calls out.

* Thesaurus ablation (Section 9.3, conclusion 2): dropping it degrades
  the CIDX-Excel mapping but leaves RDB-Star essentially unchanged.
* Leaves vs immediate children (Section 6): depth-1 leaf pruning is the
  immediate-children variant; it loses the nesting robustness on the
  canonical nested-vs-flat example.
* Leaf-count pruning (Section 6): prunes a large share of node pairs
  without hurting the Figure 2 mapping.
* Lazy vs eager expansion (Section 8.4): lazy compares fewer pairs on
  shared-type schemas while agreeing wherever contexts do not diverge.
* Optional-leaf discounting (Section 8.4).
"""

from __future__ import annotations

import pytest

from repro import CupidMatcher
from repro.config import CupidConfig
from repro.datasets.canonical import canonical_examples
from repro.datasets.cidx_excel import cidx_excel_gold
from repro.datasets.figure2 import figure2_po, figure2_purchase_order
from repro.datasets.gold import GoldMapping
from repro.eval.metrics import evaluate_mapping
from repro.eval.reporting import render_table
from repro.eval.runner import run_cidx_excel, run_rdb_star
from repro.linguistic.thesaurus import empty_thesaurus

_FIGURE2_GOLD = GoldMapping.from_pairs(
    [
        ("POLines.Item.Qty", "Items.Item.Quantity"),
        ("POLines.Item.UoM", "Items.Item.UnitOfMeasure"),
        ("POLines.Count", "Items.ItemCount"),
        ("POBillTo.City", "InvoiceTo.Address.City"),
        ("POBillTo.Street", "InvoiceTo.Address.Street"),
        ("POShipTo.City", "DeliverTo.Address.City"),
        ("POShipTo.Street", "DeliverTo.Address.Street"),
    ]
)


def test_thesaurus_ablation(publish, benchmark):
    """'The effect of dropping the thesaurus varies. With Cupid, the
    resulting mapping is comparatively poor in the CIDX-Excel example,
    but it is unchanged in the Star-RDB example.'"""

    def run():
        with_thesaurus = run_cidx_excel()["leaf_quality"]
        without = run_cidx_excel(thesaurus=empty_thesaurus())["leaf_quality"]
        star_with = run_rdb_star()["column_target_recall"]
        star_without = run_rdb_star(thesaurus=empty_thesaurus())[
            "column_target_recall"
        ]
        return with_thesaurus, without, star_with, star_without

    with_t, without_t, star_with, star_without = benchmark(run)
    rows = [
        ["CIDX-Excel attribute recall",
         f"{with_t.recall:.2f}", f"{without_t.recall:.2f}"],
        ["RDB-Star column target recall",
         f"{star_with:.2f}", f"{star_without:.2f}"],
    ]
    publish(
        "ablation_thesaurus",
        render_table(
            ["Experiment", "With thesaurus", "Without"],
            rows,
            title="E6 — thesaurus ablation (Section 9.3 conclusion 2)",
        ),
    )
    assert with_t.recall - without_t.recall > 0.2   # CIDX degrades a lot
    assert star_with - star_without <= 0.15          # Star ~unchanged


def test_leaves_vs_immediate_children(publish):
    """Section 6: using leaves (not immediate children) is what makes
    differently nested schemas match — shown on canonical example 5."""
    example5 = canonical_examples()[4]

    def recall(config):
        result = CupidMatcher(config=config).match(
            example5.schema1, example5.schema2
        )
        found = example5.gold.found_pairs(result.leaf_mapping)
        return len(found) / len(example5.gold)

    leaves_recall = recall(CupidConfig())
    children_recall = recall(CupidConfig(leaf_prune_depth=1))
    publish(
        "ablation_leaves",
        render_table(
            ["Structural frontier", "Nested-vs-flat gold recall"],
            [
                ["full leaf sets (paper)", f"{leaves_recall:.2f}"],
                ["immediate children (depth-1)", f"{children_recall:.2f}"],
            ],
            title="E8 — leaves vs immediate children (Section 6)",
        ),
    )
    assert leaves_recall == 1.0
    assert leaves_recall >= children_recall


def test_leaf_count_pruning(publish, benchmark):
    """Pruning skips a material share of comparisons at no quality cost
    on the running example."""
    po, purchase = figure2_po(), figure2_purchase_order()

    def run(prune):
        matcher = CupidMatcher(
            config=CupidConfig(prune_by_leaf_count=prune)
        )
        return matcher.match(po, purchase)

    pruned = benchmark(run, True)
    unpruned = run(False)
    saved = unpruned.treematch_result.compared_pairs - (
        pruned.treematch_result.compared_pairs
    )
    publish(
        "ablation_pruning",
        render_table(
            ["Setting", "Pairs compared", "Leaf mapping size"],
            [
                ["pruning on", pruned.treematch_result.compared_pairs,
                 len(pruned.leaf_mapping)],
                ["pruning off", unpruned.treematch_result.compared_pairs,
                 len(unpruned.leaf_mapping)],
            ],
            title="E8 — leaf-count pruning (Section 6)",
        ),
    )
    assert saved > 0
    # Pruning must preserve the gold mapping; strays below the gold
    # bar may differ (skipped comparisons change decrement patterns).
    for result in (pruned, unpruned):
        found = _FIGURE2_GOLD.found_pairs(result.leaf_mapping)
        assert len(found) == len(_FIGURE2_GOLD)


def test_lazy_vs_eager_expansion(publish, benchmark):
    """Section 8.4: lazy expansion avoids duplicate comparisons on
    schemas with shared types (the Excel PO shares Address/Contact)."""
    from repro.datasets.cidx_excel import cidx_schema, excel_schema

    def run(lazy):
        matcher = CupidMatcher(config=CupidConfig(lazy_expansion=lazy))
        return matcher.match(cidx_schema(), excel_schema())

    eager = run(False)
    lazy = benchmark(run, True)
    publish(
        "ablation_lazy",
        render_table(
            ["Mode", "Tree nodes (target)", "Pairs compared"],
            [
                ["eager (Figure 4)", len(eager.target_tree),
                 eager.treematch_result.compared_pairs],
                ["lazy (Section 8.4)", len(lazy.target_tree),
                 lazy.treematch_result.compared_pairs],
            ],
            title="E8 — lazy vs eager schema-tree expansion",
        ),
    )
    assert len(lazy.target_tree) < len(eager.target_tree)
    assert lazy.treematch_result.compared_pairs < (
        eager.treematch_result.compared_pairs
    )


def test_key_affinity(publish):
    """'It exploits keys' (Section 4): key-ness nudges the leaf
    initialization, separating key/non-key candidates of equal type."""
    from repro.model.builder import SchemaBuilder

    source = SchemaBuilder("S")
    table_s = source.add_child(source.root, "Orders")
    source.add_leaf(table_s, "Code", "integer", is_key=True)
    source.add_leaf(table_s, "Slot", "integer")
    target = SchemaBuilder("T")
    table_t = target.add_child(target.root, "Orders")
    target.add_leaf(table_t, "Key", "integer", is_key=True)
    target.add_leaf(table_t, "Rank", "integer")

    def separation(use_keys):
        matcher = CupidMatcher(
            config=CupidConfig(use_key_affinity=use_keys)
        )
        result = matcher.match(source.schema, target.schema)
        sims = result.treematch_result.sims
        code = result.source_tree.node_for_path("Orders", "Code")
        key = result.target_tree.node_for_path("Orders", "Key")
        rank = result.target_tree.node_for_path("Orders", "Rank")
        return sims.wsim(code, key) - sims.wsim(code, rank)

    with_keys = separation(True)
    without = separation(False)
    publish(
        "ablation_keys",
        render_table(
            ["Setting", "wsim(key, key) − wsim(key, non-key)"],
            [
                ["key affinity on", f"{with_keys:+.3f}"],
                ["key affinity off", f"{without:+.3f}"],
            ],
            title="E8 — key-ness affinity (Section 4 'exploits keys')",
        ),
    )
    assert with_keys > without


def test_optional_discount(publish):
    """Optional-leaf discounting buys tolerance to optional content
    (Section 8.4) — measured on the CIDX-Excel gold."""
    gold = cidx_excel_gold()
    with_discount = run_cidx_excel()["leaf_quality"]
    without = run_cidx_excel(
        config=CupidConfig(cinc=1.35, discount_optional_leaves=False)
    )["leaf_quality"]
    publish(
        "ablation_optional",
        render_table(
            ["Setting", "Recall", "F1"],
            [
                ["discount optional leaves", f"{with_discount.recall:.2f}",
                 f"{with_discount.f1:.2f}"],
                ["count all leaves", f"{without.recall:.2f}",
                 f"{without.f1:.2f}"],
            ],
            title="E8 — optional-leaf discounting (Section 8.4)",
        ),
    )
    assert with_discount.recall >= without.recall
