"""E1 — Table 1: control parameters and their stability.

Regenerates the parameter table with our defaults next to the paper's
typical values, and runs a sensitivity sweep showing that the Figure 2
gold mapping is stable in a neighbourhood of each default — Table 1's
point that e.g. "the choice of [thns] is not critical".
"""

from __future__ import annotations

import pytest

from repro import CupidMatcher
from repro.config import CupidConfig
from repro.datasets.figure2 import figure2_po, figure2_purchase_order
from repro.datasets.gold import GoldMapping
from repro.eval.reporting import render_table

PAPER_VALUES = {
    "thns": "0.5",
    "thhigh": "0.6",
    "thlow": "0.35",
    "cinc": "1.2",
    "cdec": "0.9",
    "thaccept": "0.5",
    "wstruct": "0.5-0.6",
    "wstruct_leaf": "0.5-0.6 (lower)",
}

_FIGURE2_GOLD = GoldMapping.from_pairs(
    [
        ("POLines.Item.Qty", "Items.Item.Quantity"),
        ("POLines.Item.UoM", "Items.Item.UnitOfMeasure"),
        ("POLines.Count", "Items.ItemCount"),
        ("POBillTo.City", "InvoiceTo.Address.City"),
        ("POBillTo.Street", "InvoiceTo.Address.Street"),
        ("POShipTo.City", "DeliverTo.Address.City"),
        ("POShipTo.Street", "DeliverTo.Address.Street"),
    ]
)

#: Per-parameter neighbourhoods that must keep the gold mapping intact.
SWEEPS = {
    "thns": [0.4, 0.5, 0.6],
    "thhigh": [0.6, 0.65, 0.7],
    "thlow": [0.3, 0.35, 0.4],
    "cinc": [1.15, 1.2, 1.25],
    "cdec": [0.85, 0.9, 0.95],
    "wstruct": [0.55, 0.6],
}

#: Known sensitivity edges, published for information (not asserted
#: stable). Lowering thhigh below wstruct lets structurally-perfect but
#: linguistically-unrelated ancestor pairs (wsim = wstruct·1.0) trigger
#: leaf increments, which erodes the context disambiguation — Table 1's
#: "should be greater than thaccept" understates the real constraint.
#: Raising cinc on *shallow* schemas over-boosts semantically-adjacent
#: leaves (Count vs Quantity share the quantity concept) — Table 1's
#: "function of maximum schema depth" cuts both ways.
EDGES = {"thhigh": [0.55], "cinc": [1.35]}


def _figure2_recall(config: CupidConfig) -> float:
    result = CupidMatcher(config=config).match(
        figure2_po(), figure2_purchase_order()
    )
    found = _FIGURE2_GOLD.found_pairs(result.leaf_mapping)
    return len(found) / len(_FIGURE2_GOLD)


def test_table1_parameters(publish, benchmark):
    config = CupidConfig()
    rows = [
        [name, PAPER_VALUES[name], value]
        for name, value in config.as_table().items()
    ]
    publish(
        "table1_parameters",
        render_table(
            ["Parameter", "Paper (typical)", "Ours (default)"],
            rows,
            title="Table 1 — Cupid control parameters",
        ),
    )
    benchmark(_figure2_recall, config)
    for name, value in config.as_table().items():
        if name in PAPER_VALUES and "-" not in PAPER_VALUES[name]:
            assert float(PAPER_VALUES[name]) == pytest.approx(value)


def test_table1_sensitivity(publish, benchmark):
    """Each default sits in a stable region: the Figure 2 gold mapping
    survives neighbourhood perturbations of every parameter."""

    def sweep():
        rows = []
        for name, values in SWEEPS.items():
            recalls = []
            for value in values:
                config = CupidConfig().replace(**{name: value})
                recalls.append(_figure2_recall(config))
            rows.append(
                [
                    name,
                    " / ".join(str(v) for v in values),
                    " / ".join(f"{r:.2f}" for r in recalls),
                ]
            )
        return rows

    rows = benchmark(sweep)
    edge_rows = []
    for name, values in EDGES.items():
        for value in values:
            config = CupidConfig().replace(**{name: value})
            edge_rows.append(
                [f"{name} (edge)", str(value),
                 f"{_figure2_recall(config):.2f}"]
            )
    publish(
        "table1_sensitivity",
        render_table(
            ["Parameter", "Values swept", "Figure-2 gold recall"],
            rows + edge_rows,
            title="Table 1 sensitivity — recall across neighbourhoods",
        ),
    )
    for _, __, recalls in rows:
        for recall in recalls.split(" / "):
            assert float(recall) == pytest.approx(1.0)
    # The thhigh edge exists: pushing it below wstruct loses context
    # disambiguation. Assert it so the finding is load-bearing.
    assert float(edge_rows[0][2]) < 1.0
